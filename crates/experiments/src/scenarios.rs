//! Packet-level robustness scenarios for the §4 claims.
//!
//! Each scenario builds one deterministic world — the a–m root fleet (two
//! anycast instances per letter), TLD servers at their glue addresses, a
//! recursive resolver in London and a stub client next door — applies a
//! [`FaultSchedule`] drawn from the paper's failure narratives, and runs it
//! to completion. A scenario is a pure function of `(kind, mode, seed)`:
//! re-running with the same triple reproduces the exact same packet trace,
//! [`SimStats`] and [`NodeStats`], which is what lets `tests/fault_matrix.rs`
//! assert mode-by-mode outcomes from fixed seeds.
//!
//! The four modes are the paper's §3 strategies plus the baseline:
//! hints (query the root anycast fleet), local zone on demand, preloaded
//! cache, and an RFC 7706 loopback authoritative instance.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

use rootless_netsim::fault::LinkFilter;
use rootless_netsim::geo::{city_point, GeoPoint};
use rootless_netsim::sim::{NodeId, Sim, SimStats};
use rootless_obs::metrics::{Registry, Snapshot};
use rootless_obs::trace::Tracer;
use rootless_proto::message::Rcode;
use rootless_proto::name::Name;
use rootless_proto::rr::{RData, RType};
use rootless_resolver::node::{NodeRootSource, NodeStats, RecursiveNode, StubClient};
use rootless_server::auth::{tld_server, AuthServer};
use rootless_server::node::{deploy_root_fleet, ServerNode};
use rootless_util::rng::DetRng;
use rootless_util::time::{SimDuration, SimTime};
use rootless_zone::hints::RootHints;
use rootless_zone::rootzone::{self, RootZoneConfig};
use rootless_zone::zone::Zone;

/// Root-information strategy under test: the §3 strategies plus the
/// status-quo baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenarioMode {
    /// Baseline: iterate from the root anycast addresses (hints file).
    Hints,
    /// §3 strategy 2: consult a local root zone copy per consultation.
    LocalOnDemand,
    /// §3 strategy 1: the root zone preloaded into the cache.
    LocalPreload,
    /// §3 strategy 3 / RFC 7706: authoritative root on a local address.
    LoopbackAuth,
}

impl ScenarioMode {
    /// Every mode, in presentation order.
    pub const ALL: [ScenarioMode; 4] = [
        ScenarioMode::Hints,
        ScenarioMode::LocalOnDemand,
        ScenarioMode::LocalPreload,
        ScenarioMode::LoopbackAuth,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioMode::Hints => "hints",
            ScenarioMode::LocalOnDemand => "local-zone",
            ScenarioMode::LocalPreload => "preload",
            ScenarioMode::LoopbackAuth => "loopback",
        }
    }
}

/// Failure narrative applied to the world.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenarioKind {
    /// All 26 root instances (13 letters × 2) scheduled down for the whole
    /// run — the paper's "root disappears" thought experiment.
    TotalRootOutage,
    /// Six letters fully dead, one letter flapping, every other letter
    /// reduced to a single instance — anycast under heavy stress.
    PartialAnycastCollapse,
    /// A lossy uplink: 40% extra loss on everything the resolver sends,
    /// plus a latency spike on its return path.
    LossyTldPath,
    /// Roots *and* TLD servers go dark one hour in; a query that was
    /// answered while healthy repeats after its TTL expired.
    ServeStaleUnderOutage,
}

impl ScenarioKind {
    /// Every scenario, in presentation order.
    pub const ALL: [ScenarioKind; 4] = [
        ScenarioKind::TotalRootOutage,
        ScenarioKind::PartialAnycastCollapse,
        ScenarioKind::LossyTldPath,
        ScenarioKind::ServeStaleUnderOutage,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::TotalRootOutage => "total-root-outage",
            ScenarioKind::PartialAnycastCollapse => "partial-anycast-collapse",
            ScenarioKind::LossyTldPath => "lossy-path",
            ScenarioKind::ServeStaleUnderOutage => "serve-stale-outage",
        }
    }
}

/// Outcome of one client query inside a scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryOutcome {
    /// Position in the client's query plan.
    pub index: u16,
    /// Client-observed latency.
    pub latency: SimDuration,
    /// Response code the client received.
    pub rcode: Rcode,
    /// Answer records in the response.
    pub answers: usize,
}

/// Everything a scenario run produced. `PartialEq` so replay tests can
/// assert two same-seed runs are indistinguishable.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioReport {
    /// Queries the client planned (responses may have been lost).
    pub planned: usize,
    /// Per-query client outcomes, in arrival order.
    pub results: Vec<QueryOutcome>,
    /// Resolver-node counters.
    pub node: NodeStats,
    /// Simulator counters (including fault attribution).
    pub sim: SimStats,
    /// Metrics-registry snapshot taken after the run: every `sim.*`,
    /// `cache.*`, `node.*`, `auth.*` counter the world produced.
    pub snapshot: Snapshot,
    /// The run's serialized trace-event stream — a pure function of
    /// `(kind, mode, seed)`, so replays must be byte-identical.
    pub trace: Vec<u8>,
}

impl ScenarioReport {
    /// Queries answered `NoError` with at least one record.
    pub fn answered(&self) -> usize {
        self.results.iter().filter(|r| r.rcode == Rcode::NoError && r.answers > 0).count()
    }

    /// Queries that came back `ServFail`.
    pub fn servfails(&self) -> usize {
        self.results.iter().filter(|r| r.rcode == Rcode::ServFail).count()
    }
}

/// Resolver address in every scenario world.
pub const RESOLVER_ADDR: Ipv4Addr = Ipv4Addr::new(10, 53, 0, 53);
/// Loopback-root address used by [`ScenarioMode::LoopbackAuth`].
pub const LOOPBACK_ROOT: Ipv4Addr = Ipv4Addr::new(10, 53, 0, 1);

const FOREVER: SimDuration = SimDuration::from_days(3_650);

struct World {
    sim: Sim,
    resolver_id: NodeId,
    client_id: NodeId,
    root_instances: Vec<NodeId>,
    tld_nodes: Vec<NodeId>,
    tld_addrs: Vec<Ipv4Addr>,
}

/// Builds the scenario world. Node insertion order is fully deterministic
/// (TLD glue addresses are sorted) so NodeIds — and therefore fault
/// schedules addressed by NodeId — are stable across runs.
fn build_world(
    mode: ScenarioMode,
    seed: u64,
    zone: &Arc<Zone>,
    plan: Vec<(SimDuration, Name, RType)>,
    stale_window: SimDuration,
    registry: &Arc<Registry>,
    tracer: &Arc<Tracer>,
) -> World {
    let mut sim = Sim::new(seed);
    sim.attach_obs(registry, Some(Arc::clone(tracer)));
    let per_letter: Vec<(char, usize)> = "abcdefghijklm".chars().map(|c| (c, 2)).collect();
    let fleet = deploy_root_fleet(&mut sim, Arc::clone(zone), &per_letter, 1);
    let root_instances: Vec<NodeId> =
        fleet.instances.iter().flat_map(|(_, ids)| ids.iter().copied()).collect();

    // One AuthServer per TLD, shared across that TLD's glue addresses; an
    // address listed by several TLDs serves all of their zones.
    let mut rng = DetRng::seed_from_u64(seed ^ 0x51d);
    let mut auths: HashMap<Ipv4Addr, usize> = HashMap::new();
    let mut servers: Vec<AuthServer> = Vec::new();
    for (ti, tld) in zone.tlds().into_iter().enumerate() {
        let auth = tld_server(&tld, 3, ti as u64);
        let tld_zone = auth.zone_shared();
        let mut server_idx: Option<usize> = None;
        for r in zone.delegation_records(&tld) {
            if let RData::A(addr) = r.rdata {
                if let Some(&existing) = auths.get(&addr) {
                    servers[existing].add_zone(Arc::clone(&tld_zone));
                    continue;
                }
                let idx = *server_idx.get_or_insert_with(|| {
                    servers.push(auth.clone());
                    servers.len() - 1
                });
                auths.insert(addr, idx);
            }
        }
    }
    let mut placed: Vec<(Ipv4Addr, usize)> = auths.into_iter().collect();
    placed.sort_by_key(|(addr, _)| u32::from(*addr));
    let mut tld_nodes = Vec::new();
    let mut tld_addrs = Vec::new();
    for (addr, idx) in placed {
        let node = ServerNode::new(servers[idx].clone()).with_obs(registry);
        tld_nodes.push(sim.add_node(addr, city_point(idx + 3, &mut rng), Box::new(node)));
        tld_addrs.push(addr);
    }

    let source = match mode {
        ScenarioMode::Hints => NodeRootSource::Hints,
        ScenarioMode::LocalOnDemand => NodeRootSource::LocalZone(Arc::clone(zone)),
        ScenarioMode::LocalPreload => NodeRootSource::Preload(Arc::clone(zone)),
        ScenarioMode::LoopbackAuth => NodeRootSource::Loopback(LOOPBACK_ROOT),
    };
    let mut resolver = RecursiveNode::new(source);
    resolver.cache.stale_window = stale_window;
    resolver.attach_obs(registry, Some(Arc::clone(tracer)));
    let resolver_id =
        sim.add_node(RESOLVER_ADDR, GeoPoint::new(51.5, -0.1), Box::new(resolver));
    if mode == ScenarioMode::LoopbackAuth {
        let local_root =
            ServerNode::new(AuthServer::new_shared(Arc::clone(zone))).with_obs(registry);
        sim.add_node(LOOPBACK_ROOT, GeoPoint::new(51.5, -0.1), Box::new(local_root));
    }

    let delays: Vec<SimDuration> = plan.iter().map(|(d, _, _)| *d).collect();
    let client = StubClient::new(RESOLVER_ADDR, plan);
    let client_id =
        sim.add_node(Ipv4Addr::new(10, 53, 0, 2), GeoPoint::new(51.6, -0.2), Box::new(client));
    for (i, d) in delays.iter().enumerate() {
        sim.schedule_timer(client_id, *d, i as u64);
    }
    World { sim, resolver_id, client_id, root_instances, tld_nodes, tld_addrs }
}

/// Runs one scenario to completion. Same `(kind, mode, seed)` → identical
/// [`ScenarioReport`], bit for bit.
pub fn run_scenario(kind: ScenarioKind, mode: ScenarioMode, seed: u64) -> ScenarioReport {
    let zone = Arc::new(rootzone::build(&RootZoneConfig::small(15)));
    let tlds = zone.tlds();
    let target = |i: usize| {
        tlds[i % tlds.len()].child("domain0").unwrap().child("www").unwrap()
    };
    let at = |s: u64| SimTime::ZERO + SimDuration::from_secs(s);

    let (plan, stale_window): (Vec<(SimDuration, Name, RType)>, SimDuration) = match kind {
        ScenarioKind::TotalRootOutage => (
            vec![
                (SimDuration::ZERO, target(0), RType::A),
                (SimDuration::from_secs(150), target(1), RType::A),
            ],
            SimDuration::ZERO,
        ),
        ScenarioKind::PartialAnycastCollapse => (
            (0..3)
                .map(|i| (SimDuration::from_secs(i as u64 * 30), target(i), RType::A))
                .collect(),
            SimDuration::ZERO,
        ),
        ScenarioKind::LossyTldPath => (
            (0..3)
                .map(|i| (SimDuration::from_secs(i as u64 * 60), target(i), RType::A))
                .collect(),
            SimDuration::ZERO,
        ),
        ScenarioKind::ServeStaleUnderOutage => (
            vec![
                (SimDuration::ZERO, target(0), RType::A),
                // The www A record's TTL is one hour; two hours in it is
                // expired but well inside the stale window.
                (SimDuration::from_hours(2), target(0), RType::A),
            ],
            SimDuration::from_days(7),
        ),
    };

    let planned = plan.len();
    let registry = Registry::new();
    let tracer = Tracer::new(65_536);
    let mut world = build_world(mode, seed, &zone, plan, stale_window, &registry, &tracer);
    match kind {
        ScenarioKind::TotalRootOutage => {
            for id in &world.root_instances {
                world.sim.faults.node_outage(*id, SimTime::ZERO, SimTime::ZERO + FOREVER);
            }
        }
        ScenarioKind::PartialAnycastCollapse => {
            // Letters a–f fully dead; letter g flaps; h–m lose one of two
            // instances. Instances are laid out letter-major, two per letter.
            for (letter, pair) in world.root_instances.chunks(2).enumerate() {
                match letter {
                    0..=5 => {
                        for id in pair {
                            world.sim.faults.node_outage(
                                *id,
                                SimTime::ZERO,
                                SimTime::ZERO + FOREVER,
                            );
                        }
                    }
                    6 => {
                        world.sim.faults.flap(
                            pair[0],
                            at(5),
                            SimDuration::from_secs(10),
                            SimDuration::from_secs(10),
                            3,
                        );
                    }
                    _ => {
                        world.sim.faults.node_outage(
                            pair[0],
                            SimTime::ZERO,
                            SimTime::ZERO + FOREVER,
                        );
                    }
                }
            }
        }
        ScenarioKind::LossyTldPath => {
            // Loss on the resolver's outbound links to every remote
            // upstream (roots and TLD servers) — not the local client leg
            // and not the RFC 7706 loopback, which never crosses the WAN.
            let upstreams: Vec<Ipv4Addr> = RootHints::standard()
                .v4_addrs()
                .into_iter()
                .chain(world.tld_addrs.iter().copied())
                .collect();
            for addr in upstreams {
                world.sim.faults.loss_burst(
                    LinkFilter::between(RESOLVER_ADDR, addr),
                    SimTime::ZERO,
                    SimTime::ZERO + FOREVER,
                    0.4,
                );
                // The return path jitters instead of dropping.
                world.sim.faults.latency_spike(
                    LinkFilter::between(addr, RESOLVER_ADDR),
                    SimTime::ZERO,
                    SimTime::ZERO + FOREVER,
                    SimDuration::from_millis(50),
                    SimDuration::from_millis(20),
                );
            }
        }
        ScenarioKind::ServeStaleUnderOutage => {
            let dark = SimTime::ZERO + SimDuration::from_hours(1);
            for id in world.root_instances.iter().chain(&world.tld_nodes) {
                world.sim.faults.node_outage(*id, dark, SimTime::ZERO + FOREVER);
            }
        }
    }

    world.sim.faults.publish(&registry);
    world.sim.run_to_completion();

    let client = (world.sim.node(world.client_id) as &dyn std::any::Any)
        .downcast_ref::<StubClient>()
        .expect("client node");
    let results = client
        .results
        .iter()
        .map(|(i, lat, rcode, answers)| QueryOutcome {
            index: *i,
            latency: *lat,
            rcode: *rcode,
            answers: answers.len(),
        })
        .collect();
    let node = (world.sim.node(world.resolver_id) as &dyn std::any::Any)
        .downcast_ref::<RecursiveNode>()
        .expect("resolver node")
        .stats
        .clone();
    ScenarioReport {
        planned,
        results,
        node,
        sim: world.sim.stats.clone(),
        snapshot: registry.snapshot(),
        trace: tracer.serialize(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_worlds_are_seed_deterministic() {
        let a = run_scenario(ScenarioKind::PartialAnycastCollapse, ScenarioMode::Hints, 7);
        let b = run_scenario(ScenarioKind::PartialAnycastCollapse, ScenarioMode::Hints, 7);
        assert_eq!(a, b);
        assert_eq!(a.results.len(), 3);
    }

    #[test]
    fn total_outage_separates_hints_from_local_modes() {
        let hints = run_scenario(ScenarioKind::TotalRootOutage, ScenarioMode::Hints, 11);
        assert_eq!(hints.answered(), 0);
        assert_eq!(hints.servfails(), 2);
        let preload = run_scenario(ScenarioKind::TotalRootOutage, ScenarioMode::LocalPreload, 11);
        assert_eq!(preload.answered(), 2);
        assert_eq!(preload.node.root_queries, 0);
    }
}
