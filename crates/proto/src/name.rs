//! Domain names: presentation format, wire format, and the orderings DNS
//! needs (case-insensitive equality, RFC 4034 canonical ordering).
//!
//! A [`Name`] is a sequence of labels, most-specific first, *excluding* the
//! terminal empty root label (so the root name has zero labels). Limits from
//! RFC 1035 are enforced at construction: ≤63 octets per label, ≤255 octets
//! in wire form (including the length bytes and the root terminator).
//!
//! # Representation
//!
//! Labels are stored flat in one shared, contiguous, length-prefixed byte
//! buffer (`len l₀… len l₁… …`, no trailing root byte) instead of a
//! `Vec<Vec<u8>>`: constructing a name costs exactly one allocation, and a
//! clone costs none (the buffer is behind an `Arc`). Suffix-producing
//! operations — [`Name::parent`], [`Name::tld`], [`Name::suffix`] — return
//! names that *share* the buffer and just start at a later label boundary,
//! so walking up the hierarchy on the resolver's hot path never touches the
//! heap. A case-folded 64-bit hash is precomputed at construction; hashing
//! a name is a single `write_u64` and equality gets an O(1) fast path.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

use crate::error::ProtoError;

/// Maximum octets in a single label.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum octets of a name on the wire (length bytes + labels + root 0x00).
pub const MAX_NAME_LEN: usize = 255;

/// A fully-qualified DNS domain name.
///
/// All names in this workspace are absolute; the presentation parser accepts
/// both `"example.com"` and `"example.com."` and produces the same value.
///
/// ```
/// use rootless_proto::name::Name;
/// let n = Name::parse("WWW.SIGCOMM.org").unwrap();
/// assert_eq!(n.label_count(), 3);
/// assert_eq!(n.tld().unwrap().to_string(), "org.");
/// assert_eq!(n, Name::parse("www.sigcomm.ORG.").unwrap());
/// ```
#[derive(Clone)]
pub struct Name {
    /// Length-prefixed labels of the most-derived name this buffer was
    /// built for, original case preserved, no trailing root byte. This
    /// name's own labels are `buf[start..]`; suffixes share the allocation.
    buf: Arc<[u8]>,
    /// Byte offset of this name's first label within `buf` (always a label
    /// boundary; equals `buf.len()` for the root).
    start: u16,
    /// Case-folded FNV-1a hash of `buf[start..]`, precomputed.
    hash: u64,
}

/// Byte-wise ASCII-case-insensitive equality — the DNS name comparison
/// rule, usable on raw label bytes without materializing a [`Name`].
pub fn eq_ignore_case(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.eq_ignore_ascii_case(y))
}

fn cmp_ignore_case(a: &[u8], b: &[u8]) -> Ordering {
    let la = a.iter().map(|c| c.to_ascii_lowercase());
    let lb = b.iter().map(|c| c.to_ascii_lowercase());
    la.cmp(lb)
}

/// FNV-1a over `bytes` with ASCII case folded. Length-prefix bytes are ≤ 63
/// and therefore unaffected by the fold, so hashing the raw encoding this
/// way is equivalent to hashing (len, lowercased label) pairs. Hashing a
/// flat qname slice taken straight off the wire (via [`Name::slice`])
/// yields the same value as [`Name::folded_hash`] on the parsed name,
/// which is what lets serving-side lookup tables match queries without
/// allocating.
pub fn folded_hash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b.to_ascii_lowercase() as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn empty_buf() -> Arc<[u8]> {
    static EMPTY: OnceLock<Arc<[u8]>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::from(Vec::new())))
}

/// Iterator over a name's labels (most-specific first).
pub struct LabelIter<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for LabelIter<'a> {
    type Item = &'a [u8];
    fn next(&mut self) -> Option<&'a [u8]> {
        let (&len, tail) = self.rest.split_first()?;
        let (label, rest) = tail.split_at(len as usize);
        self.rest = rest;
        Some(label)
    }
}

impl Name {
    /// This name's length-prefixed encoding (no trailing root byte) — the
    /// exact bytes an uncompressed wire qname carries before its
    /// terminating zero, original case preserved. Serving-side lookup
    /// tables compare these against raw question bytes with
    /// [`eq_ignore_case`] / [`folded_hash`].
    #[inline]
    pub fn slice(&self) -> &[u8] {
        &self.buf[self.start as usize..]
    }

    /// Wraps a validated flat encoding (start = 0).
    fn from_buf(buf: Vec<u8>) -> Result<Self, ProtoError> {
        if buf.len() + 1 > MAX_NAME_LEN {
            return Err(ProtoError::NameTooLong(buf.len() + 1));
        }
        let hash = folded_hash(&buf);
        Ok(Name { buf: Arc::from(buf), start: 0, hash })
    }

    /// A name sharing this buffer, starting at label boundary `offset`.
    fn suffix_at(&self, offset: usize) -> Name {
        debug_assert!(offset <= self.buf.len());
        Name {
            buf: Arc::clone(&self.buf),
            start: offset as u16,
            hash: folded_hash(&self.buf[offset..]),
        }
    }

    /// Appends `label` (with its length prefix) to `out`, validating limits.
    fn push_label(out: &mut Vec<u8>, label: &[u8]) -> Result<(), ProtoError> {
        if label.is_empty() {
            return Err(ProtoError::EmptyLabel);
        }
        if label.len() > MAX_LABEL_LEN {
            return Err(ProtoError::LabelTooLong(label.len()));
        }
        out.push(label.len() as u8);
        out.extend_from_slice(label);
        Ok(())
    }

    /// The root name (zero labels).
    pub fn root() -> Self {
        Name { buf: empty_buf(), start: 0, hash: folded_hash(&[]) }
    }

    /// True if this is the root name.
    pub fn is_root(&self) -> bool {
        self.slice().is_empty()
    }

    /// Number of labels (the root has zero).
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// Raw label bytes, most-specific first.
    pub fn labels(&self) -> LabelIter<'_> {
        LabelIter { rest: self.slice() }
    }

    /// The precomputed case-folded hash of this name. Names that compare
    /// equal under [`Name::eq`] always share this value.
    #[inline]
    pub fn folded_hash(&self) -> u64 {
        self.hash
    }

    /// Builds a name from raw labels (most-specific first), enforcing limits.
    pub fn from_labels<I, L>(labels: I) -> Result<Self, ProtoError>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let mut buf = Vec::new();
        for l in labels {
            Self::push_label(&mut buf, l.as_ref())?;
        }
        Name::from_buf(buf)
    }

    /// Parses presentation format. Supports `\.` / `\\` escapes and `\DDD`
    /// decimal escapes. `""` and `"."` both denote the root.
    pub fn parse(s: &str) -> Result<Self, ProtoError> {
        if s.is_empty() || s == "." {
            return Ok(Name::root());
        }
        let bytes = s.as_bytes();
        // One flat buffer from the start: each label gets a length byte
        // patched in after its content is known.
        let mut buf: Vec<u8> = Vec::with_capacity(bytes.len() + 1);
        let mut label_at = 0; // index of the current label's length byte
        buf.push(0);
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'.' => {
                    let len = buf.len() - label_at - 1;
                    if len == 0 {
                        return Err(ProtoError::EmptyLabel);
                    }
                    if len > MAX_LABEL_LEN {
                        return Err(ProtoError::LabelTooLong(len));
                    }
                    buf[label_at] = len as u8;
                    label_at = buf.len();
                    buf.push(0);
                    i += 1;
                }
                b'\\' => {
                    if i + 1 >= bytes.len() {
                        return Err(ProtoError::BadEscape);
                    }
                    let c = bytes[i + 1];
                    if c.is_ascii_digit() {
                        if i + 3 >= bytes.len() || !bytes[i + 2].is_ascii_digit() || !bytes[i + 3].is_ascii_digit() {
                            return Err(ProtoError::BadEscape);
                        }
                        let v = (c - b'0') as u32 * 100 + (bytes[i + 2] - b'0') as u32 * 10 + (bytes[i + 3] - b'0') as u32;
                        if v > 255 {
                            return Err(ProtoError::BadEscape);
                        }
                        buf.push(v as u8);
                        i += 4;
                    } else {
                        buf.push(c);
                        i += 2;
                    }
                }
                c => {
                    buf.push(c);
                    i += 1;
                }
            }
        }
        let len = buf.len() - label_at - 1;
        if len == 0 {
            // Trailing dot: drop the dangling length byte.
            buf.pop();
        } else {
            if len > MAX_LABEL_LEN {
                return Err(ProtoError::LabelTooLong(len));
            }
            buf[label_at] = len as u8;
        }
        Name::from_buf(buf)
    }

    /// Wire-format length: one length byte per label + label bytes + root 0.
    pub fn wire_len(&self) -> usize {
        self.slice().len() + 1
    }

    /// The name with the most-specific label removed; `None` for the root.
    /// Shares this name's buffer — no allocation.
    pub fn parent(&self) -> Option<Name> {
        let s = self.slice();
        if s.is_empty() {
            None
        } else {
            Some(self.suffix_at(self.start as usize + 1 + s[0] as usize))
        }
    }

    /// The top-level-domain portion: the last label as a one-label name.
    /// `None` for the root itself. Shares this name's buffer.
    pub fn tld(&self) -> Option<Name> {
        let s = self.slice();
        if s.is_empty() {
            return None;
        }
        let mut i = 0;
        loop {
            let next = i + 1 + s[i] as usize;
            if next == s.len() {
                return Some(self.suffix_at(self.start as usize + i));
            }
            i = next;
        }
    }

    /// The most-specific (leftmost) label, if any.
    pub fn first_label(&self) -> Option<&[u8]> {
        self.labels().next()
    }

    /// True if `self` is `ancestor` or a descendant of it (case-insensitive).
    /// Every name is within the root.
    pub fn is_within(&self, ancestor: &Name) -> bool {
        let s = self.slice();
        let a = ancestor.slice();
        if a.len() > s.len() {
            return false;
        }
        // Advance over whole labels until the remaining tail is exactly as
        // long as the ancestor; a length mismatch at a boundary means the
        // ancestor cannot be aligned.
        let mut i = 0;
        while s.len() - i > a.len() {
            i += 1 + s[i] as usize;
        }
        s.len() - i == a.len() && eq_ignore_case(&s[i..], a)
    }

    /// Prepends `label` to produce a child name.
    pub fn child<L: AsRef<[u8]>>(&self, label: L) -> Result<Name, ProtoError> {
        let label = label.as_ref();
        let mut buf = Vec::with_capacity(1 + label.len() + self.slice().len());
        Self::push_label(&mut buf, label)?;
        buf.extend_from_slice(self.slice());
        Name::from_buf(buf)
    }

    /// Concatenates `self` (as the more-specific part) onto `suffix`.
    pub fn concat(&self, suffix: &Name) -> Result<Name, ProtoError> {
        let mut buf = Vec::with_capacity(self.slice().len() + suffix.slice().len());
        buf.extend_from_slice(self.slice());
        buf.extend_from_slice(suffix.slice());
        Name::from_buf(buf)
    }

    /// Returns the suffix of this name with `n` labels (the `n` least
    /// specific). `n` must not exceed the label count. Shares this name's
    /// buffer — no allocation.
    pub fn suffix(&self, n: usize) -> Name {
        let s = self.slice();
        let total = self.label_count();
        assert!(n <= total);
        let mut i = 0;
        for _ in 0..total - n {
            i += 1 + s[i] as usize;
        }
        self.suffix_at(self.start as usize + i)
    }

    /// A lowercase copy (canonical case per RFC 4034).
    pub fn to_lowercase(&self) -> Name {
        let buf: Vec<u8> = self.slice().iter().map(|b| b.to_ascii_lowercase()).collect();
        // Length bytes are < 'A' and unaffected by the fold; limits were
        // checked when `self` was built.
        Name { buf: Arc::from(buf), start: 0, hash: self.hash }
    }

    /// Byte offsets of each label within `slice()`. A name is ≤ 254 bytes,
    /// so offsets fit in `u8` and at most 127 labels exist.
    fn label_offsets(&self, out: &mut [u8; 128]) -> usize {
        let s = self.slice();
        let mut n = 0;
        let mut i = 0;
        while i < s.len() {
            out[n] = i as u8;
            n += 1;
            i += 1 + s[i] as usize;
        }
        n
    }

    /// RFC 4034 §6.1 canonical ordering: compare label sequences right to
    /// left (least-specific first), case-insensitively, with absent labels
    /// sorting first.
    pub fn canonical_cmp(&self, other: &Name) -> Ordering {
        let sa = self.slice();
        let sb = other.slice();
        let (mut offs_a, mut offs_b) = ([0u8; 128], [0u8; 128]);
        let na = self.label_offsets(&mut offs_a);
        let nb = other.label_offsets(&mut offs_b);
        for k in 1..=na.min(nb) {
            let ia = offs_a[na - k] as usize;
            let ib = offs_b[nb - k] as usize;
            let la = &sa[ia + 1..ia + 1 + sa[ia] as usize];
            let lb = &sb[ib + 1..ib + 1 + sb[ib] as usize];
            match cmp_ignore_case(la, lb) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        na.cmp(&nb)
    }

    /// Canonical wire form: lowercase, uncompressed. Used by the DNSSEC layer
    /// when hashing RRsets.
    pub fn canonical_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend(self.slice().iter().map(|b| b.to_ascii_lowercase()));
        out.push(0);
        out
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        // Equal names always share the precomputed folded hash, so a
        // mismatch short-circuits; the byte compare settles collisions.
        self.hash == other.hash && eq_ignore_case(self.slice(), other.slice())
    }
}

impl Eq for Name {}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Self) -> Ordering {
        self.canonical_cmp(other)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            return write!(f, ".");
        }
        for l in self.labels() {
            for &b in l {
                match b {
                    b'.' | b'\\' => write!(f, "\\{}", b as char)?,
                    0x21..=0x7e => write!(f, "{}", b as char)?,
                    _ => write!(f, "\\{b:03}")?,
                }
            }
            write!(f, ".")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({self})")
    }
}

impl std::str::FromStr for Name {
    type Err = ProtoError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn root_forms() {
        assert!(n(".").is_root());
        assert!(n("").is_root());
        assert_eq!(n(".").to_string(), ".");
        assert_eq!(n(".").wire_len(), 1);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["com.", "example.com.", "www.sigcomm.org.", "a.b.c.d.e.f."] {
            assert_eq!(n(s).to_string(), s);
        }
        // Trailing dot is optional on input.
        assert_eq!(n("example.com").to_string(), "example.com.");
    }

    #[test]
    fn case_insensitive_equality_and_hash() {
        let a = n("WWW.Example.COM");
        let b = n("www.example.com");
        assert_eq!(a, b);
        let hash = |name: &Name| {
            let mut h = DefaultHasher::new();
            name.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn display_preserves_case() {
        assert_eq!(n("WwW.ORG").to_string(), "WwW.ORG.");
    }

    #[test]
    fn escapes() {
        let name = Name::parse("a\\.b.com").unwrap();
        assert_eq!(name.label_count(), 2);
        assert_eq!(name.first_label().unwrap(), b"a.b");
        assert_eq!(name.to_string(), "a\\.b.com.");

        let ddd = Name::parse("\\065bc.com").unwrap();
        assert_eq!(ddd.first_label().unwrap(), b"Abc");

        assert!(Name::parse("x\\").is_err());
        assert!(Name::parse("x\\25").is_err());
        assert!(Name::parse("x\\999").is_err());
    }

    #[test]
    fn non_printable_bytes_display_as_escapes() {
        let name = Name::from_labels([&[0x07u8, b'a'][..]]).unwrap();
        assert_eq!(name.to_string(), "\\007a.");
        assert_eq!(Name::parse(&name.to_string()).unwrap(), name);
    }

    #[test]
    fn label_length_limits() {
        let ok = "a".repeat(63);
        assert!(Name::parse(&ok).is_ok());
        let too_long = "a".repeat(64);
        assert!(matches!(Name::parse(&too_long), Err(ProtoError::LabelTooLong(64))));
    }

    #[test]
    fn name_length_limit() {
        // Four 63-byte labels = 4*64 + 1 = 257 wire bytes: too long.
        let l = "a".repeat(63);
        let s = format!("{l}.{l}.{l}.{l}");
        assert!(matches!(Name::parse(&s), Err(ProtoError::NameTooLong(_))));
        // Three is fine (193 bytes) and a fourth short one still fits.
        let s = format!("{l}.{l}.{l}");
        assert!(Name::parse(&s).is_ok());
    }

    #[test]
    fn empty_label_rejected() {
        assert!(matches!(Name::parse("a..b"), Err(ProtoError::EmptyLabel)));
        assert!(matches!(Name::parse(".com"), Err(ProtoError::EmptyLabel)));
    }

    #[test]
    fn parent_and_tld() {
        let name = n("www.sigcomm.org");
        assert_eq!(name.parent().unwrap(), n("sigcomm.org"));
        assert_eq!(name.tld().unwrap(), n("org"));
        assert_eq!(n("org").parent().unwrap(), Name::root());
        assert!(Name::root().parent().is_none());
        assert!(Name::root().tld().is_none());
    }

    #[test]
    fn is_within() {
        assert!(n("www.example.com").is_within(&n("example.com")));
        assert!(n("www.example.com").is_within(&n("com")));
        assert!(n("www.example.com").is_within(&Name::root()));
        assert!(n("example.com").is_within(&n("example.com")));
        assert!(!n("example.com").is_within(&n("www.example.com")));
        assert!(!n("notexample.com").is_within(&n("example.com")));
        assert!(n("WWW.EXAMPLE.COM").is_within(&n("example.com")));
    }

    #[test]
    fn child_and_concat() {
        assert_eq!(n("com").child("example").unwrap(), n("example.com"));
        assert_eq!(n("www").concat(&n("example.com")).unwrap(), n("www.example.com"));
        assert_eq!(Name::root().child("org").unwrap(), n("org"));
    }

    #[test]
    fn suffix() {
        let name = n("a.b.c.d");
        assert_eq!(name.suffix(0), Name::root());
        assert_eq!(name.suffix(2), n("c.d"));
        assert_eq!(name.suffix(4), name);
    }

    #[test]
    fn suffix_ops_share_the_buffer() {
        let name = n("www.example.com");
        let parent = name.parent().unwrap();
        let tld = name.tld().unwrap();
        let suf = name.suffix(2);
        assert!(Arc::ptr_eq(&name.buf, &parent.buf));
        assert!(Arc::ptr_eq(&name.buf, &tld.buf));
        assert!(Arc::ptr_eq(&name.buf, &suf.buf));
        // And derived names behave as independent values.
        assert_eq!(parent, n("example.com"));
        assert_eq!(parent.parent().unwrap(), n("com"));
        assert_eq!(tld, n("com"));
        assert_eq!(suf, n("example.com"));
        assert_eq!(suf.to_string(), "example.com.");
    }

    #[test]
    fn derived_names_hash_like_fresh_ones() {
        let derived = n("www.example.com").parent().unwrap();
        let fresh = n("Example.COM");
        assert_eq!(derived, fresh);
        assert_eq!(derived.folded_hash(), fresh.folded_hash());
    }

    #[test]
    fn canonical_ordering_rfc4034_example() {
        // The RFC 4034 §6.1 worked example order.
        let order = [
            "example.",
            "a.example.",
            "yljkjljk.a.example.",
            "Z.a.example.",
            "zABC.a.EXAMPLE.",
            "z.example.",
            "\\001.z.example.",
            "*.z.example.",
            "\\200.z.example.",
        ];
        let names: Vec<Name> = order.iter().map(|s| Name::parse(s).unwrap()).collect();
        for w in names.windows(2) {
            assert_eq!(w[0].canonical_cmp(&w[1]), Ordering::Less, "{} < {}", w[0], w[1]);
        }
        let mut shuffled: Vec<Name> = names.iter().rev().cloned().collect();
        shuffled.sort();
        assert_eq!(shuffled, names);
    }

    #[test]
    fn canonical_wire_lowercases() {
        let name = n("WwW.OrG");
        assert_eq!(name.canonical_wire(), b"\x03www\x03org\x00".to_vec());
        assert_eq!(Name::root().canonical_wire(), vec![0]);
    }

    #[test]
    fn labels_iterate_most_specific_first() {
        let name = n("www.example.com");
        let labels: Vec<&[u8]> = name.labels().collect();
        assert_eq!(labels, vec![b"www".as_slice(), b"example".as_slice(), b"com".as_slice()]);
    }
}
