//! Domain names: presentation format, wire format, and the orderings DNS
//! needs (case-insensitive equality, RFC 4034 canonical ordering).
//!
//! A [`Name`] is a sequence of labels, most-specific first, *excluding* the
//! terminal empty root label (so the root name has zero labels). Limits from
//! RFC 1035 are enforced at construction: ≤63 octets per label, ≤255 octets
//! in wire form (including the length bytes and the root terminator).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::ProtoError;

/// Maximum octets in a single label.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum octets of a name on the wire (length bytes + labels + root 0x00).
pub const MAX_NAME_LEN: usize = 255;

/// A fully-qualified DNS domain name.
///
/// All names in this workspace are absolute; the presentation parser accepts
/// both `"example.com"` and `"example.com."` and produces the same value.
///
/// ```
/// use rootless_proto::name::Name;
/// let n = Name::parse("WWW.SIGCOMM.org").unwrap();
/// assert_eq!(n.label_count(), 3);
/// assert_eq!(n.tld().unwrap().to_string(), "org.");
/// assert_eq!(n, Name::parse("www.sigcomm.ORG.").unwrap());
/// ```
#[derive(Clone, Debug, Eq)]
pub struct Name {
    /// Labels, most-specific first. Original case is preserved for display;
    /// comparisons are case-insensitive.
    labels: Vec<Vec<u8>>,
}

fn eq_ignore_case(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_ascii_lowercase() == y.to_ascii_lowercase())
}

fn cmp_ignore_case(a: &[u8], b: &[u8]) -> Ordering {
    let la = a.iter().map(|c| c.to_ascii_lowercase());
    let lb = b.iter().map(|c| c.to_ascii_lowercase());
    la.cmp(lb)
}

impl Name {
    /// The root name (zero labels).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// True if this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of labels (the root has zero).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Raw label bytes, most-specific first.
    pub fn labels(&self) -> impl Iterator<Item = &[u8]> {
        self.labels.iter().map(|l| l.as_slice())
    }

    /// Builds a name from raw labels (most-specific first), enforcing limits.
    pub fn from_labels<I, L>(labels: I) -> Result<Self, ProtoError>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let mut out = Vec::new();
        for l in labels {
            let l = l.as_ref();
            if l.is_empty() {
                return Err(ProtoError::EmptyLabel);
            }
            if l.len() > MAX_LABEL_LEN {
                return Err(ProtoError::LabelTooLong(l.len()));
            }
            out.push(l.to_vec());
        }
        let name = Name { labels: out };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(ProtoError::NameTooLong(name.wire_len()));
        }
        Ok(name)
    }

    /// Parses presentation format. Supports `\.` / `\\` escapes and `\DDD`
    /// decimal escapes. `""` and `"."` both denote the root.
    pub fn parse(s: &str) -> Result<Self, ProtoError> {
        if s.is_empty() || s == "." {
            return Ok(Name::root());
        }
        let bytes = s.as_bytes();
        let mut labels: Vec<Vec<u8>> = Vec::new();
        let mut cur: Vec<u8> = Vec::new();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'.' => {
                    if cur.is_empty() {
                        return Err(ProtoError::EmptyLabel);
                    }
                    labels.push(std::mem::take(&mut cur));
                    i += 1;
                }
                b'\\' => {
                    if i + 1 >= bytes.len() {
                        return Err(ProtoError::BadEscape);
                    }
                    let c = bytes[i + 1];
                    if c.is_ascii_digit() {
                        if i + 3 >= bytes.len() || !bytes[i + 2].is_ascii_digit() || !bytes[i + 3].is_ascii_digit() {
                            return Err(ProtoError::BadEscape);
                        }
                        let v = (c - b'0') as u32 * 100 + (bytes[i + 2] - b'0') as u32 * 10 + (bytes[i + 3] - b'0') as u32;
                        if v > 255 {
                            return Err(ProtoError::BadEscape);
                        }
                        cur.push(v as u8);
                        i += 4;
                    } else {
                        cur.push(c);
                        i += 2;
                    }
                }
                c => {
                    cur.push(c);
                    i += 1;
                }
            }
        }
        if !cur.is_empty() {
            labels.push(cur);
        }
        Name::from_labels(labels)
    }

    /// Wire-format length: one length byte per label + label bytes + root 0.
    pub fn wire_len(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// The name with the most-specific label removed; `None` for the root.
    pub fn parent(&self) -> Option<Name> {
        if self.labels.is_empty() {
            None
        } else {
            Some(Name { labels: self.labels[1..].to_vec() })
        }
    }

    /// The top-level-domain portion: the last label as a one-label name.
    /// `None` for the root itself.
    pub fn tld(&self) -> Option<Name> {
        self.labels.last().map(|l| Name { labels: vec![l.clone()] })
    }

    /// The most-specific (leftmost) label, if any.
    pub fn first_label(&self) -> Option<&[u8]> {
        self.labels.first().map(|l| l.as_slice())
    }

    /// True if `self` is `ancestor` or a descendant of it (case-insensitive).
    /// Every name is within the root.
    pub fn is_within(&self, ancestor: &Name) -> bool {
        if ancestor.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - ancestor.labels.len();
        self.labels[offset..]
            .iter()
            .zip(&ancestor.labels)
            .all(|(a, b)| eq_ignore_case(a, b))
    }

    /// Prepends `label` to produce a child name.
    pub fn child<L: AsRef<[u8]>>(&self, label: L) -> Result<Name, ProtoError> {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label.as_ref().to_vec());
        labels.extend(self.labels.iter().cloned());
        Name::from_labels(labels)
    }

    /// Concatenates `self` (as the more-specific part) onto `suffix`.
    pub fn concat(&self, suffix: &Name) -> Result<Name, ProtoError> {
        let labels: Vec<&[u8]> = self.labels().chain(suffix.labels()).collect();
        Name::from_labels(labels)
    }

    /// Returns the suffix of this name with `n` labels (the `n` least
    /// specific). `n` must not exceed the label count.
    pub fn suffix(&self, n: usize) -> Name {
        assert!(n <= self.labels.len());
        Name { labels: self.labels[self.labels.len() - n..].to_vec() }
    }

    /// A lowercase copy (canonical case per RFC 4034).
    pub fn to_lowercase(&self) -> Name {
        Name {
            labels: self.labels.iter().map(|l| l.to_ascii_lowercase()).collect(),
        }
    }

    /// RFC 4034 §6.1 canonical ordering: compare label sequences right to
    /// left (least-specific first), case-insensitively, with absent labels
    /// sorting first.
    pub fn canonical_cmp(&self, other: &Name) -> Ordering {
        let mut a = self.labels.iter().rev();
        let mut b = other.labels.iter().rev();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return Ordering::Equal,
                (None, Some(_)) => return Ordering::Less,
                (Some(_), None) => return Ordering::Greater,
                (Some(x), Some(y)) => match cmp_ignore_case(x, y) {
                    Ordering::Equal => continue,
                    ord => return ord,
                },
            }
        }
    }

    /// Canonical wire form: lowercase, uncompressed. Used by the DNSSEC layer
    /// when hashing RRsets.
    pub fn canonical_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        for l in &self.labels {
            out.push(l.len() as u8);
            out.extend(l.iter().map(|c| c.to_ascii_lowercase()));
        }
        out.push(0);
        out
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.labels.len() == other.labels.len()
            && self.labels.iter().zip(&other.labels).all(|(a, b)| eq_ignore_case(a, b))
    }
}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for l in &self.labels {
            state.write_usize(l.len());
            for b in l {
                state.write_u8(b.to_ascii_lowercase());
            }
        }
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Self) -> Ordering {
        self.canonical_cmp(other)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        for l in &self.labels {
            for &b in l {
                match b {
                    b'.' | b'\\' => write!(f, "\\{}", b as char)?,
                    0x21..=0x7e => write!(f, "{}", b as char)?,
                    _ => write!(f, "\\{b:03}")?,
                }
            }
            write!(f, ".")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Name {
    type Err = ProtoError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn root_forms() {
        assert!(n(".").is_root());
        assert!(n("").is_root());
        assert_eq!(n(".").to_string(), ".");
        assert_eq!(n(".").wire_len(), 1);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["com.", "example.com.", "www.sigcomm.org.", "a.b.c.d.e.f."] {
            assert_eq!(n(s).to_string(), s);
        }
        // Trailing dot is optional on input.
        assert_eq!(n("example.com").to_string(), "example.com.");
    }

    #[test]
    fn case_insensitive_equality_and_hash() {
        let a = n("WWW.Example.COM");
        let b = n("www.example.com");
        assert_eq!(a, b);
        let hash = |name: &Name| {
            let mut h = DefaultHasher::new();
            name.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn display_preserves_case() {
        assert_eq!(n("WwW.ORG").to_string(), "WwW.ORG.");
    }

    #[test]
    fn escapes() {
        let name = Name::parse("a\\.b.com").unwrap();
        assert_eq!(name.label_count(), 2);
        assert_eq!(name.first_label().unwrap(), b"a.b");
        assert_eq!(name.to_string(), "a\\.b.com.");

        let ddd = Name::parse("\\065bc.com").unwrap();
        assert_eq!(ddd.first_label().unwrap(), b"Abc");

        assert!(Name::parse("x\\").is_err());
        assert!(Name::parse("x\\25").is_err());
        assert!(Name::parse("x\\999").is_err());
    }

    #[test]
    fn non_printable_bytes_display_as_escapes() {
        let name = Name::from_labels([&[0x07u8, b'a'][..]]).unwrap();
        assert_eq!(name.to_string(), "\\007a.");
        assert_eq!(Name::parse(&name.to_string()).unwrap(), name);
    }

    #[test]
    fn label_length_limits() {
        let ok = "a".repeat(63);
        assert!(Name::parse(&ok).is_ok());
        let too_long = "a".repeat(64);
        assert!(matches!(Name::parse(&too_long), Err(ProtoError::LabelTooLong(64))));
    }

    #[test]
    fn name_length_limit() {
        // Four 63-byte labels = 4*64 + 1 = 257 wire bytes: too long.
        let l = "a".repeat(63);
        let s = format!("{l}.{l}.{l}.{l}");
        assert!(matches!(Name::parse(&s), Err(ProtoError::NameTooLong(_))));
        // Three is fine (193 bytes) and a fourth short one still fits.
        let s = format!("{l}.{l}.{l}");
        assert!(Name::parse(&s).is_ok());
    }

    #[test]
    fn empty_label_rejected() {
        assert!(matches!(Name::parse("a..b"), Err(ProtoError::EmptyLabel)));
        assert!(matches!(Name::parse(".com"), Err(ProtoError::EmptyLabel)));
    }

    #[test]
    fn parent_and_tld() {
        let name = n("www.sigcomm.org");
        assert_eq!(name.parent().unwrap(), n("sigcomm.org"));
        assert_eq!(name.tld().unwrap(), n("org"));
        assert_eq!(n("org").parent().unwrap(), Name::root());
        assert!(Name::root().parent().is_none());
        assert!(Name::root().tld().is_none());
    }

    #[test]
    fn is_within() {
        assert!(n("www.example.com").is_within(&n("example.com")));
        assert!(n("www.example.com").is_within(&n("com")));
        assert!(n("www.example.com").is_within(&Name::root()));
        assert!(n("example.com").is_within(&n("example.com")));
        assert!(!n("example.com").is_within(&n("www.example.com")));
        assert!(!n("notexample.com").is_within(&n("example.com")));
        assert!(n("WWW.EXAMPLE.COM").is_within(&n("example.com")));
    }

    #[test]
    fn child_and_concat() {
        assert_eq!(n("com").child("example").unwrap(), n("example.com"));
        assert_eq!(n("www").concat(&n("example.com")).unwrap(), n("www.example.com"));
        assert_eq!(Name::root().child("org").unwrap(), n("org"));
    }

    #[test]
    fn suffix() {
        let name = n("a.b.c.d");
        assert_eq!(name.suffix(0), Name::root());
        assert_eq!(name.suffix(2), n("c.d"));
        assert_eq!(name.suffix(4), name);
    }

    #[test]
    fn canonical_ordering_rfc4034_example() {
        // The RFC 4034 §6.1 worked example order.
        let order = [
            "example.",
            "a.example.",
            "yljkjljk.a.example.",
            "Z.a.example.",
            "zABC.a.EXAMPLE.",
            "z.example.",
            "\\001.z.example.",
            "*.z.example.",
            "\\200.z.example.",
        ];
        let names: Vec<Name> = order.iter().map(|s| Name::parse(s).unwrap()).collect();
        for w in names.windows(2) {
            assert_eq!(w[0].canonical_cmp(&w[1]), Ordering::Less, "{} < {}", w[0], w[1]);
        }
        let mut shuffled: Vec<Name> = names.iter().rev().cloned().collect();
        shuffled.sort();
        assert_eq!(shuffled, names);
    }

    #[test]
    fn canonical_wire_lowercases() {
        let name = n("WwW.OrG");
        assert_eq!(name.canonical_wire(), b"\x03www\x03org\x00".to_vec());
        assert_eq!(Name::root().canonical_wire(), vec![0]);
    }

    #[test]
    fn labels_iterate_most_specific_first() {
        let name = n("www.example.com");
        let labels: Vec<&[u8]> = name.labels().collect();
        assert_eq!(labels, vec![b"www".as_slice(), b"example".as_slice(), b"com".as_slice()]);
    }
}
