//! DNS messages: header, question, four record sections, EDNS(0).

use std::fmt;

use crate::error::ProtoError;
use crate::name::Name;
use crate::rr::{RClass, RType, Record};
use crate::view::MessageView;
use crate::wire::Encoder;

/// Query/response operation codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Standard query.
    Query,
    /// Zone change notification.
    Notify,
    /// Dynamic update.
    Update,
    /// Anything else.
    Unknown(u8),
}

impl Opcode {
    fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::Notify => 4,
            Opcode::Update => 5,
            Opcode::Unknown(v) => v,
        }
    }
    fn from_u8(v: u8) -> Self {
        match v {
            0 => Opcode::Query,
            4 => Opcode::Notify,
            5 => Opcode::Update,
            other => Opcode::Unknown(other),
        }
    }
}

/// Response codes (4-bit header field; extended codes live in EDNS).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Malformed query.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist (authoritative).
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Refused by policy.
    Refused,
    /// Anything else.
    Unknown(u8),
}

impl Rcode {
    /// The 4-bit wire value (observability and tracing stamp answers with
    /// this).
    pub fn to_u8(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Unknown(v) => v,
        }
    }
    fn from_u8(v: u8) -> Self {
        match v {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Unknown(other),
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rcode::NoError => write!(f, "NOERROR"),
            Rcode::FormErr => write!(f, "FORMERR"),
            Rcode::ServFail => write!(f, "SERVFAIL"),
            Rcode::NxDomain => write!(f, "NXDOMAIN"),
            Rcode::NotImp => write!(f, "NOTIMP"),
            Rcode::Refused => write!(f, "REFUSED"),
            Rcode::Unknown(v) => write!(f, "RCODE{v}"),
        }
    }
}

/// Parsed message header (counts are derived from the section vectors at
/// encode time, so they are not stored here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Transaction ID.
    pub id: u16,
    /// True for responses.
    pub response: bool,
    /// Operation.
    pub opcode: Opcode,
    /// Authoritative answer.
    pub authoritative: bool,
    /// Truncation (answer did not fit; retry over stream transport).
    pub truncated: bool,
    /// Recursion desired.
    pub recursion_desired: bool,
    /// Recursion available.
    pub recursion_available: bool,
    /// Authentic data (DNSSEC-validated by the responding resolver).
    pub authentic_data: bool,
    /// Checking disabled.
    pub checking_disabled: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl Default for Header {
    fn default() -> Self {
        Header {
            id: 0,
            response: false,
            opcode: Opcode::Query,
            authoritative: false,
            truncated: false,
            recursion_desired: false,
            recursion_available: false,
            authentic_data: false,
            checking_disabled: false,
            rcode: Rcode::NoError,
        }
    }
}

impl Header {
    fn flags_word(&self) -> u16 {
        let mut w: u16 = 0;
        if self.response {
            w |= 1 << 15;
        }
        w |= (self.opcode.to_u8() as u16 & 0xf) << 11;
        if self.authoritative {
            w |= 1 << 10;
        }
        if self.truncated {
            w |= 1 << 9;
        }
        if self.recursion_desired {
            w |= 1 << 8;
        }
        if self.recursion_available {
            w |= 1 << 7;
        }
        if self.authentic_data {
            w |= 1 << 5;
        }
        if self.checking_disabled {
            w |= 1 << 4;
        }
        w |= self.rcode.to_u8() as u16 & 0xf;
        w
    }

    pub(crate) fn from_flags_word(id: u16, w: u16) -> Header {
        Header {
            id,
            response: w & (1 << 15) != 0,
            opcode: Opcode::from_u8(((w >> 11) & 0xf) as u8),
            authoritative: w & (1 << 10) != 0,
            truncated: w & (1 << 9) != 0,
            recursion_desired: w & (1 << 8) != 0,
            recursion_available: w & (1 << 7) != 0,
            authentic_data: w & (1 << 5) != 0,
            checking_disabled: w & (1 << 4) != 0,
            rcode: Rcode::from_u8((w & 0xf) as u8),
        }
    }
}

/// A question section entry.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Question {
    /// Queried name.
    pub qname: Name,
    /// Queried type.
    pub qtype: RType,
    /// Queried class.
    pub qclass: RClass,
}

impl Question {
    /// Convenience constructor for class IN.
    pub fn new(qname: Name, qtype: RType) -> Self {
        Question { qname, qtype, qclass: RClass::IN }
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.qname, self.qclass, self.qtype)
    }
}

/// EDNS(0) parameters carried in an OPT pseudo-record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edns {
    /// Advertised maximum UDP payload size.
    pub udp_payload_size: u16,
    /// Extended RCODE high bits (unused in this workspace, kept for fidelity).
    pub extended_rcode: u8,
    /// EDNS version (0).
    pub version: u8,
    /// DNSSEC OK: requester wants DNSSEC records.
    pub dnssec_ok: bool,
}

impl Default for Edns {
    fn default() -> Self {
        Edns { udp_payload_size: 4096, extended_rcode: 0, version: 0, dnssec_ok: false }
    }
}

/// A complete DNS message.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Message {
    /// Header flags and ID.
    pub header: Header,
    /// Question section (exactly one in ordinary queries).
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section (NS referrals, SOA for negative answers).
    pub authorities: Vec<Record>,
    /// Additional section (glue), excluding the OPT record.
    pub additionals: Vec<Record>,
    /// EDNS(0) parameters, if an OPT record is present.
    pub edns: Option<Edns>,
}

impl Message {
    /// Builds a query for `qname`/`qtype` with recursion desired off (the
    /// iterative style recursive resolvers use toward authoritative servers).
    pub fn query(id: u16, qname: Name, qtype: RType) -> Message {
        Message {
            header: Header { id, ..Header::default() },
            questions: vec![Question::new(qname, qtype)],
            ..Message::default()
        }
    }

    /// Builds a response skeleton mirroring `query`'s ID and question.
    pub fn response_to(query: &Message, rcode: Rcode) -> Message {
        Message {
            header: Header {
                id: query.header.id,
                response: true,
                opcode: query.header.opcode,
                recursion_desired: query.header.recursion_desired,
                rcode,
                ..Header::default()
            },
            questions: query.questions.clone(),
            ..Message::default()
        }
    }

    /// First question, if any.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// Total records across answer/authority/additional sections.
    pub fn record_count(&self) -> usize {
        self.answers.len() + self.authorities.len() + self.additionals.len()
    }

    /// Encodes to wire format with name compression.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode_into(&mut enc);
        enc.finish()
    }

    /// Encodes into a caller-owned (typically pooled) encoder. The encoder
    /// is [`Encoder::clear`]ed first; at steady state, reusing one encoder
    /// per node makes this path allocation-free.
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.clear();
        enc.u16(self.header.id);
        enc.u16(self.header.flags_word());
        enc.u16(self.questions.len() as u16);
        enc.u16(self.answers.len() as u16);
        enc.u16(self.authorities.len() as u16);
        let arcount = self.additionals.len() + usize::from(self.edns.is_some());
        enc.u16(arcount as u16);
        for q in &self.questions {
            enc.name(&q.qname);
            enc.u16(q.qtype.to_u16());
            enc.u16(q.qclass.to_u16());
        }
        for r in self.answers.iter().chain(&self.authorities).chain(&self.additionals) {
            r.encode(enc);
        }
        if let Some(edns) = &self.edns {
            // OPT: root owner, type 41, class = payload size, TTL packs
            // extended rcode / version / DO bit.
            enc.name(&Name::root());
            enc.u16(RType::OPT.to_u16());
            enc.u16(edns.udp_payload_size);
            let ttl: u32 = ((edns.extended_rcode as u32) << 24)
                | ((edns.version as u32) << 16)
                | if edns.dnssec_ok { 1 << 15 } else { 0 };
            enc.u32(ttl);
            enc.u16(0); // no options
        }
    }

    /// Decodes a wire-format message. Rejects trailing bytes.
    ///
    /// Thin wrapper over [`MessageView::parse`] + [`MessageView::to_owned`];
    /// fast paths that do not need owned records should use the view
    /// directly.
    pub fn decode(buf: &[u8]) -> Result<Message, ProtoError> {
        MessageView::parse(buf)?.to_owned()
    }

    /// Encoded size without keeping the buffer.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            ";; id {} {} {} qd={} an={} ns={} ar={}",
            self.header.id,
            if self.header.response { "response" } else { "query" },
            self.header.rcode,
            self.questions.len(),
            self.answers.len(),
            self.authorities.len(),
            self.additionals.len(),
        )?;
        for q in &self.questions {
            writeln!(f, ";{q}")?;
        }
        for r in &self.answers {
            writeln!(f, "{r}")?;
        }
        for r in &self.authorities {
            writeln!(f, "{r}")?;
        }
        for r in &self.additionals {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rr::{RData, Soa};

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn roundtrip(msg: &Message) -> Message {
        let buf = msg.encode();
        let out = Message::decode(&buf).expect("decode");
        assert_eq!(&out, msg);
        out
    }

    #[test]
    fn empty_query_roundtrip() {
        let q = Message::query(0x1234, n("www.sigcomm.org"), RType::A);
        roundtrip(&q);
    }

    #[test]
    fn header_flags_roundtrip() {
        let mut msg = Message::query(7, n("example.com"), RType::AAAA);
        msg.header.response = true;
        msg.header.authoritative = true;
        msg.header.truncated = true;
        msg.header.recursion_desired = true;
        msg.header.recursion_available = true;
        msg.header.authentic_data = true;
        msg.header.checking_disabled = true;
        msg.header.rcode = Rcode::NxDomain;
        roundtrip(&msg);
    }

    #[test]
    fn all_rcodes_roundtrip() {
        for rc in [Rcode::NoError, Rcode::FormErr, Rcode::ServFail, Rcode::NxDomain, Rcode::NotImp, Rcode::Refused, Rcode::Unknown(9)] {
            let mut msg = Message::query(1, n("x"), RType::A);
            msg.header.rcode = rc;
            roundtrip(&msg);
        }
    }

    #[test]
    fn referral_response_roundtrip() {
        // The shape a root server actually returns: empty answer, NS records
        // in authority, glue in additional.
        let q = Message::query(42, n("www.sigcomm.org"), RType::A);
        let mut resp = Message::response_to(&q, Rcode::NoError);
        resp.authorities.push(Record::new(n("org"), 172_800, RData::Ns(n("a0.org.afilias-nst.info"))));
        resp.authorities.push(Record::new(n("org"), 172_800, RData::Ns(n("b0.org.afilias-nst.org"))));
        resp.additionals.push(Record::new(n("a0.org.afilias-nst.info"), 172_800, RData::A("199.19.56.1".parse().unwrap())));
        resp.additionals.push(Record::new(n("a0.org.afilias-nst.info"), 172_800, RData::Aaaa("2001:500:e::1".parse().unwrap())));
        let decoded = roundtrip(&resp);
        assert_eq!(decoded.header.id, 42);
        assert!(decoded.answers.is_empty());
        assert_eq!(decoded.authorities.len(), 2);
        assert_eq!(decoded.additionals.len(), 2);
    }

    #[test]
    fn nxdomain_with_soa_roundtrip() {
        let q = Message::query(9, n("no-such-tld-xyzzy"), RType::A);
        let mut resp = Message::response_to(&q, Rcode::NxDomain);
        resp.header.authoritative = true;
        resp.authorities.push(Record::new(
            Name::root(),
            86_400,
            RData::Soa(Soa {
                mname: n("a.root-servers.net"),
                rname: n("nstld.verisign-grs.com"),
                serial: 1,
                refresh: 1800,
                retry: 900,
                expire: 604_800,
                minimum: 86_400,
            }),
        ));
        roundtrip(&resp);
    }

    #[test]
    fn edns_roundtrip() {
        let mut q = Message::query(3, n("com"), RType::NS);
        q.edns = Some(Edns { udp_payload_size: 1232, extended_rcode: 0, version: 0, dnssec_ok: true });
        let decoded = roundtrip(&q);
        assert_eq!(decoded.edns.unwrap().udp_payload_size, 1232);
        assert!(decoded.edns.unwrap().dnssec_ok);
    }

    #[test]
    fn edns_counts_in_arcount() {
        let mut q = Message::query(3, n("com"), RType::NS);
        q.edns = Some(Edns::default());
        let buf = q.encode();
        // ARCOUNT is bytes 10..12.
        assert_eq!(u16::from_be_bytes([buf[10], buf[11]]), 1);
    }

    #[test]
    fn multiple_opt_rejected() {
        let mut q = Message::query(3, n("com"), RType::NS);
        q.edns = Some(Edns::default());
        let mut buf = q.encode();
        // Append a second OPT record and bump ARCOUNT.
        let opt_start = buf.len() - 11;
        let opt = buf[opt_start..].to_vec();
        buf.extend_from_slice(&opt);
        buf[11] = 2;
        assert!(matches!(Message::decode(&buf), Err(ProtoError::BadMessage(_))));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let q = Message::query(1, n("com"), RType::NS);
        let mut buf = q.encode();
        buf.push(0);
        assert!(matches!(Message::decode(&buf), Err(ProtoError::BadMessage("trailing bytes"))));
    }

    #[test]
    fn truncated_header_rejected() {
        assert_eq!(Message::decode(&[0, 1, 2]), Err(ProtoError::Truncated));
    }

    #[test]
    fn count_overstates_records_rejected() {
        let q = Message::query(1, n("com"), RType::NS);
        let mut buf = q.encode();
        buf[7] = 1; // claim one answer that is not present (ANCOUNT low byte)
        assert!(Message::decode(&buf).is_err());
    }

    #[test]
    fn compression_shrinks_referral() {
        // 13 NS records sharing "root-servers.net" must compress well.
        let mut resp = Message::query(0, Name::root(), RType::NS);
        resp.header.response = true;
        for c in b'a'..=b'm' {
            let host = n(&format!("{}.root-servers.net", c as char));
            resp.answers.push(Record::new(Name::root(), 518_400, RData::Ns(host)));
        }
        let buf = resp.encode();
        let naive: usize = resp.answers.iter().map(|r| r.name.wire_len() + 10 + 20).sum();
        assert!(buf.len() < naive, "compressed {} vs naive {}", buf.len(), naive);
        let decoded = Message::decode(&buf).unwrap();
        assert_eq!(decoded.answers.len(), 13);
    }

    #[test]
    fn response_to_mirrors_query() {
        let mut q = Message::query(77, n("a.b"), RType::TXT);
        q.header.recursion_desired = true;
        let r = Message::response_to(&q, Rcode::Refused);
        assert_eq!(r.header.id, 77);
        assert!(r.header.response);
        assert!(r.header.recursion_desired);
        assert_eq!(r.header.rcode, Rcode::Refused);
        assert_eq!(r.questions, q.questions);
    }
}
