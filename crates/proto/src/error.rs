//! Error type for wire-format and presentation-format handling.

use std::fmt;

/// Errors produced while parsing or serializing DNS data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// A label exceeded 63 octets.
    LabelTooLong(usize),
    /// A name exceeded 255 octets in wire form.
    NameTooLong(usize),
    /// An empty label appeared inside a name (`"a..b"`).
    EmptyLabel,
    /// A malformed `\` escape in presentation format.
    BadEscape,
    /// The wire buffer ended before the structure was complete.
    Truncated,
    /// A compression pointer pointed forward or formed a loop.
    BadPointer,
    /// A label length byte used the reserved 0x40/0x80 prefixes.
    BadLabelType(u8),
    /// RDLENGTH disagreed with the actual RDATA size.
    BadRdataLength {
        /// The type whose RDATA was inconsistent.
        rtype: u16,
        /// RDLENGTH from the wire.
        declared: usize,
        /// Bytes actually consumed.
        consumed: usize,
    },
    /// The message had trailing garbage or an impossible count.
    BadMessage(&'static str),
    /// An unknown opcode/rcode/class outside what this implementation models.
    Unsupported(&'static str),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::LabelTooLong(n) => write!(f, "label of {n} octets exceeds 63"),
            ProtoError::NameTooLong(n) => write!(f, "name of {n} wire octets exceeds 255"),
            ProtoError::EmptyLabel => write!(f, "empty label in name"),
            ProtoError::BadEscape => write!(f, "malformed escape in presentation format"),
            ProtoError::Truncated => write!(f, "truncated wire data"),
            ProtoError::BadPointer => write!(f, "invalid compression pointer"),
            ProtoError::BadLabelType(b) => write!(f, "reserved label type byte {b:#04x}"),
            ProtoError::BadRdataLength { rtype, declared, consumed } => {
                write!(f, "rdata length mismatch for type {rtype}: declared {declared}, consumed {consumed}")
            }
            ProtoError::BadMessage(what) => write!(f, "malformed message: {what}"),
            ProtoError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}
