//! Low-level wire encoding and decoding with RFC 1035 name compression.
//!
//! The encoder is *poolable*: [`Encoder::clear`] resets it in O(1) without
//! freeing the output buffer or the compression dictionary, so a long-lived
//! per-node encoder reaches a steady state where encoding a message performs
//! zero heap allocations. The compression dictionary itself is an
//! open-addressed table of `(folded_hash, offset)` slots that compare
//! candidate suffixes against the bytes *already written* to the output
//! buffer — no owned keys, no per-suffix allocation.

use crate::error::ProtoError;
use crate::name::{eq_ignore_case, folded_hash, Name};

/// Highest buffer offset a 14-bit compression pointer can reference.
const MAX_POINTER_TARGET: usize = 0x3fff;
/// Maximum pointer jumps followed while decoding one name.
const MAX_JUMPS: usize = 64;

/// One compression-dictionary slot: a name suffix that starts at `offset` in
/// the output buffer, identified by the case-folded hash of its flat
/// (length-prefixed, pointer-free) form. A slot is live iff its generation
/// matches the dictionary's current generation, which makes clearing the
/// table a counter bump instead of a memset.
#[derive(Clone, Copy, Debug)]
struct Slot {
    hash: u64,
    gen: u32,
    offset: u16,
}

const EMPTY_SLOT: Slot = Slot { hash: 0, gen: 0, offset: 0 };

/// Open-addressed (linear probing) suffix → offset table. Keys are never
/// stored: equality is settled by walking the wire-format name at
/// `slot.offset` in the output buffer (following pointers) and comparing it
/// label-by-label against the candidate suffix.
#[derive(Clone, Debug)]
struct Dict {
    slots: Vec<Slot>,
    /// Live entries in the current generation.
    len: usize,
    /// Current generation; slots with `gen != self.gen` are empty.
    gen: u32,
}

impl Dict {
    const INITIAL_SLOTS: usize = 128;

    fn new() -> Dict {
        Dict { slots: Vec::new(), len: 0, gen: 1 }
    }

    /// Forgets all entries in O(1). Capacity is retained.
    fn clear(&mut self) {
        self.len = 0;
        self.gen += 1;
        if self.gen == 0 {
            // Generation counter wrapped: really wipe the slots once every
            // 2^32 clears so stale entries cannot resurrect.
            self.slots.fill(EMPTY_SLOT);
            self.gen = 1;
        }
    }

    /// Looks up the suffix `flat` (length-prefixed labels, no terminator).
    /// Returns the buffer offset where an equal suffix was already written,
    /// or `None` after remembering the probe so [`Dict::insert_probed`] can
    /// fill the hole without re-probing.
    fn find(&mut self, hash: u64, flat: &[u8], buf: &[u8]) -> Result<u16, usize> {
        if self.slots.is_empty() {
            self.slots.resize(Self::INITIAL_SLOTS, EMPTY_SLOT);
        } else if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        loop {
            let slot = self.slots[i];
            if slot.gen != self.gen {
                return Err(i);
            }
            if slot.hash == hash && suffix_matches_at(buf, slot.offset as usize, flat) {
                return Ok(slot.offset);
            }
            i = (i + 1) & mask;
        }
    }

    /// Fills the empty slot returned by a failed [`Dict::find`] probe.
    fn insert_probed(&mut self, slot: usize, hash: u64, offset: u16) {
        self.slots[slot] = Slot { hash, gen: self.gen, offset };
        self.len += 1;
    }

    /// Doubles the table. Live entries are re-placed by their stored hash;
    /// the output buffer is untouched.
    fn grow(&mut self) {
        let new_len = (self.slots.len() * 2).max(Self::INITIAL_SLOTS);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; new_len]);
        let mask = self.slots.len() - 1;
        for slot in old {
            if slot.gen != self.gen {
                continue;
            }
            let mut i = slot.hash as usize & mask;
            while self.slots[i].gen == self.gen {
                i = (i + 1) & mask;
            }
            self.slots[i] = slot;
        }
    }
}

/// Walks the wire-format name starting at `pos` in `buf` (following
/// compression pointers with the same jump/backward limits as the decoder)
/// and compares it case-insensitively against the flat length-prefixed
/// suffix `want` (no terminal root byte). Everything the encoder registers
/// is well-formed, so the defensive bounds checks never fire in practice —
/// they keep the walk panic-free for arbitrary buffers.
pub(crate) fn suffix_matches_at(buf: &[u8], mut pos: usize, mut want: &[u8]) -> bool {
    let mut jumps = 0;
    let mut lowest = pos;
    loop {
        let Some(&len) = buf.get(pos) else { return false };
        match len {
            0 => return want.is_empty(),
            l if l & 0xc0 == 0xc0 => {
                let Some(&lo) = buf.get(pos + 1) else { return false };
                let target = (((l & 0x3f) as usize) << 8) | lo as usize;
                if target >= lowest {
                    return false;
                }
                lowest = target;
                jumps += 1;
                if jumps > MAX_JUMPS {
                    return false;
                }
                pos = target;
            }
            l if l & 0xc0 != 0 => return false,
            l => {
                let l = l as usize;
                let end = pos + 1 + l;
                if end > buf.len() || want.len() < 1 + l || want[0] as usize != l {
                    return false;
                }
                if !eq_ignore_case(&buf[pos + 1..end], &want[1..1 + l]) {
                    return false;
                }
                want = &want[1 + l..];
                pos = end;
            }
        }
    }
}

/// Wire encoder with a compression dictionary. `Clone` copies the buffer
/// and dictionary as-is (a cloned pooled encoder starts with the same
/// steady-state capacity).
#[derive(Clone, Debug)]
pub struct Encoder {
    buf: Vec<u8>,
    dict: Dict,
    /// When false, names are written in full and the dictionary is bypassed
    /// entirely (the naive encoder used as a differential-testing oracle).
    compress: bool,
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::with_capacity(512), dict: Dict::new(), compress: true }
    }

    /// Creates an encoder that never compresses names (every name is written
    /// in full). Decoders must accept both forms; property tests use this as
    /// the oracle against the compressing encoder.
    pub fn without_compression() -> Self {
        Encoder { buf: Vec::with_capacity(512), dict: Dict::new(), compress: false }
    }

    /// Resets the encoder for reuse without releasing capacity. After the
    /// first few messages a pooled encoder stops allocating entirely.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.dict.clear();
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The bytes written so far, borrowed. Pooled callers hand this straight
    /// to the transport instead of consuming the encoder.
    pub fn wire(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder and returns the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Writes a name with compression against previously written names.
    pub fn name(&mut self, name: &Name) {
        self.name_inner(name, true);
    }

    /// Writes a name without compression (required inside RRSIG/NSEC RDATA),
    /// but still *registers* its suffixes so later names may point at it.
    pub fn name_uncompressed(&mut self, name: &Name) {
        self.name_inner(name, false);
    }

    fn name_inner(&mut self, name: &Name, allow_pointer: bool) {
        if !self.compress {
            self.buf.extend_from_slice(name.slice());
            self.buf.push(0);
            return;
        }
        // Walk the flat label encoding suffix by suffix, most-specific
        // first. First registration wins (matching the dictionary-per-suffix
        // semantics of the original HashMap encoder), and a hit emits a
        // pointer and stops.
        let flat = name.slice();
        let mut i = 0usize;
        while i < flat.len() {
            let suffix = &flat[i..];
            let hash = if i == 0 { name.folded_hash() } else { folded_hash(suffix) };
            match self.dict.find(hash, suffix, &self.buf) {
                Ok(off) if allow_pointer => {
                    self.u16(0xc000 | off);
                    return;
                }
                Ok(_) => {}
                Err(slot) => {
                    if self.buf.len() <= MAX_POINTER_TARGET {
                        self.dict.insert_probed(slot, hash, self.buf.len() as u16);
                    }
                }
            }
            let l = flat[i] as usize;
            self.buf.extend_from_slice(&flat[i..i + 1 + l]);
            i += 1 + l;
        }
        self.buf.push(0);
    }

    /// Reserves a two-byte length field (e.g. RDLENGTH); returns a marker to
    /// pass to [`Encoder::patch_len`] once the variable-size body is written.
    pub fn begin_len(&mut self) -> usize {
        let marker = self.buf.len();
        self.u16(0);
        marker
    }

    /// Backpatches the length field at `marker` with the number of bytes
    /// written since it.
    pub fn patch_len(&mut self, marker: usize) {
        let len = self.buf.len() - marker - 2;
        debug_assert!(len <= u16::MAX as usize, "rdata longer than 64KiB");
        self.buf[marker..marker + 2].copy_from_slice(&(len as u16).to_be_bytes());
    }

    /// Overwrites the big-endian u16 at an absolute offset (header counts).
    pub fn patch_u16_at(&mut self, offset: usize, v: u16) {
        self.buf[offset..offset + 2].copy_from_slice(&v.to_be_bytes());
    }
}

/// Wire decoder over a complete message buffer.
///
/// The decoder always holds the *entire* message (compression pointers may
/// reference any earlier offset) plus a cursor.
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder at offset zero.
    pub fn new(data: &'a [u8]) -> Self {
        Decoder { data, pos: 0 }
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// The full underlying buffer (compression pointers may reference any
    /// earlier offset, so views keep the whole message around).
    pub fn data(&self) -> &'a [u8] {
        self.data
    }

    /// Bytes remaining after the cursor.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when the cursor has consumed the whole buffer.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.data.len()
    }

    /// Moves the cursor to an absolute offset (used after length-delimited
    /// sections).
    pub fn seek(&mut self, pos: usize) -> Result<(), ProtoError> {
        if pos > self.data.len() {
            return Err(ProtoError::Truncated);
        }
        self.pos = pos;
        Ok(())
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, ProtoError> {
        let b = *self.data.get(self.pos).ok_or(ProtoError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, ProtoError> {
        let s = self.take(2)?;
        Ok(u16::from_be_bytes([s[0], s[1]]))
    }

    /// Reads a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, ProtoError> {
        let s = self.take(4)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return Err(ProtoError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a possibly-compressed name. Pointers must reference earlier
    /// offsets; at most [`MAX_JUMPS`] jumps are followed.
    pub fn name(&mut self) -> Result<Name, ProtoError> {
        let mut labels: Vec<Vec<u8>> = Vec::new();
        let mut pos = self.pos;
        let mut jumped = false;
        let mut jumps = 0;
        let mut lowest_target = self.pos;
        loop {
            let len = *self.data.get(pos).ok_or(ProtoError::Truncated)?;
            match len {
                0 => {
                    if !jumped {
                        self.pos = pos + 1;
                    }
                    return Name::from_labels(labels);
                }
                l if l & 0xc0 == 0xc0 => {
                    let lo = *self.data.get(pos + 1).ok_or(ProtoError::Truncated)?;
                    let target = (((l & 0x3f) as usize) << 8) | lo as usize;
                    // Pointers must go strictly backwards relative to the
                    // earliest offset visited; this rules out loops.
                    if target >= lowest_target {
                        return Err(ProtoError::BadPointer);
                    }
                    lowest_target = target;
                    jumps += 1;
                    if jumps > MAX_JUMPS {
                        return Err(ProtoError::BadPointer);
                    }
                    if !jumped {
                        self.pos = pos + 2;
                        jumped = true;
                    }
                    pos = target;
                }
                l if l & 0xc0 != 0 => return Err(ProtoError::BadLabelType(l)),
                l => {
                    let start = pos + 1;
                    let end = start + l as usize;
                    if end > self.data.len() {
                        return Err(ProtoError::Truncated);
                    }
                    labels.push(self.data[start..end].to_vec());
                    pos = end;
                }
            }
        }
    }

    /// Advances the cursor past a possibly-compressed name without
    /// materializing it. A compression pointer *terminates* the in-stream
    /// encoding, so skipping never chases pointers — this is what makes the
    /// lazy [`crate::view::MessageView`] record walk O(bytes in stream).
    /// Structural label errors are still reported; pointer *targets* are only
    /// validated when the name is actually resolved.
    pub fn skip_name(&mut self) -> Result<(), ProtoError> {
        loop {
            let len = self.u8()?;
            match len {
                0 => return Ok(()),
                l if l & 0xc0 == 0xc0 => {
                    self.u8()?;
                    return Ok(());
                }
                l if l & 0xc0 != 0 => return Err(ProtoError::BadLabelType(l)),
                l => {
                    self.take(l as usize)?;
                }
            }
        }
    }

    /// Compares the name at the cursor against `name` case-insensitively
    /// without allocating, following pointers with the decoder's limits.
    /// The cursor does not move.
    pub fn name_is(&self, name: &Name) -> bool {
        suffix_matches_at(self.data, self.pos, name.slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn ints_roundtrip() {
        let mut e = Encoder::new();
        e.u8(0xab);
        e.u16(0x1234);
        e.u32(0xdeadbeef);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u8().unwrap(), 0xab);
        assert_eq!(d.u16().unwrap(), 0x1234);
        assert_eq!(d.u32().unwrap(), 0xdeadbeef);
        assert!(d.is_exhausted());
    }

    #[test]
    fn name_roundtrip_uncompressed() {
        let mut e = Encoder::new();
        e.name(&n("www.example.com"));
        let buf = e.finish();
        assert_eq!(buf, b"\x03www\x07example\x03com\x00");
        let mut d = Decoder::new(&buf);
        assert_eq!(d.name().unwrap(), n("www.example.com"));
        assert!(d.is_exhausted());
    }

    #[test]
    fn root_name_is_single_zero() {
        let mut e = Encoder::new();
        e.name(&Name::root());
        let buf = e.finish();
        assert_eq!(buf, vec![0]);
        let mut d = Decoder::new(&buf);
        assert!(d.name().unwrap().is_root());
    }

    #[test]
    fn compression_reuses_suffix() {
        let mut e = Encoder::new();
        e.name(&n("www.example.com"));
        e.name(&n("mail.example.com"));
        e.name(&n("example.com"));
        let buf = e.finish();
        // Second name: "mail" label + pointer (2 bytes) to offset 4.
        let first_len = n("www.example.com").wire_len();
        assert_eq!(&buf[first_len..first_len + 5], b"\x04mail");
        assert_eq!(buf[first_len + 5] & 0xc0, 0xc0);
        let mut d = Decoder::new(&buf);
        assert_eq!(d.name().unwrap(), n("www.example.com"));
        assert_eq!(d.name().unwrap(), n("mail.example.com"));
        assert_eq!(d.name().unwrap(), n("example.com"));
        assert!(d.is_exhausted());
    }

    #[test]
    fn compression_is_case_insensitive() {
        let mut e = Encoder::new();
        e.name(&n("www.EXAMPLE.com"));
        e.name(&n("ftp.example.COM"));
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        let a = d.name().unwrap();
        let b = d.name().unwrap();
        assert_eq!(a, n("www.example.com"));
        assert_eq!(b, n("ftp.example.com"));
        // Whole-message size shows the suffix was shared.
        assert!(buf.len() < n("www.example.com").wire_len() + n("ftp.example.com").wire_len());
    }

    #[test]
    fn identical_name_compresses_to_single_pointer() {
        let mut e = Encoder::new();
        e.name(&n("example.com"));
        let before = e.len();
        e.name(&n("example.com"));
        let buf = e.finish();
        assert_eq!(buf.len() - before, 2, "second copy should be one pointer");
    }

    #[test]
    fn uncompressed_mode_never_emits_pointers() {
        let mut e = Encoder::new();
        e.name(&n("example.com"));
        let before = e.len();
        e.name_uncompressed(&n("example.com"));
        let buf = e.finish();
        assert_eq!(&buf[before..], b"\x07example\x03com\x00");
        let mut d = Decoder::new(&buf);
        assert_eq!(d.name().unwrap(), n("example.com"));
        assert_eq!(d.name().unwrap(), n("example.com"));
    }

    #[test]
    fn forward_pointer_rejected() {
        // Pointer at offset 0 pointing to offset 1 (forward): invalid.
        let buf = [0xc0, 0x01, 0x00];
        let mut d = Decoder::new(&buf);
        assert_eq!(d.name().unwrap_err(), ProtoError::BadPointer);
    }

    #[test]
    fn self_pointer_rejected() {
        let buf = [0xc0, 0x00];
        let mut d = Decoder::new(&buf);
        assert_eq!(d.name().unwrap_err(), ProtoError::BadPointer);
    }

    #[test]
    fn pointer_loop_rejected() {
        // name at 0 points to 2, which points back to 0.
        let buf = [0xc0, 0x02, 0xc0, 0x00];
        let mut d = Decoder::new(&buf);
        assert_eq!(d.name().unwrap_err(), ProtoError::BadPointer);
        let mut d2 = Decoder::new(&buf);
        d2.seek(2).unwrap();
        assert!(d2.name().is_err());
    }

    #[test]
    fn truncated_label_rejected() {
        let buf = [0x05, b'a', b'b'];
        let mut d = Decoder::new(&buf);
        assert_eq!(d.name().unwrap_err(), ProtoError::Truncated);
    }

    #[test]
    fn missing_terminator_rejected() {
        let buf = [0x01, b'a'];
        let mut d = Decoder::new(&buf);
        assert_eq!(d.name().unwrap_err(), ProtoError::Truncated);
    }

    #[test]
    fn reserved_label_type_rejected() {
        let buf = [0x41, 0x00];
        let mut d = Decoder::new(&buf);
        assert_eq!(d.name().unwrap_err(), ProtoError::BadLabelType(0x41));
    }

    #[test]
    fn cursor_lands_after_pointer() {
        let mut e = Encoder::new();
        e.name(&n("example.com"));
        e.name(&n("example.com"));
        e.u16(0xbeef);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        d.name().unwrap();
        d.name().unwrap();
        assert_eq!(d.u16().unwrap(), 0xbeef);
    }

    #[test]
    fn cleared_encoder_reproduces_identical_bytes() {
        let names = ["www.example.com", "mail.EXAMPLE.com", "example.com", "org", "a.b.org"];
        let mut fresh = Encoder::new();
        for s in names {
            fresh.name(&n(s));
        }
        let expected = fresh.finish();
        let mut pooled = Encoder::new();
        for _ in 0..3 {
            pooled.clear();
            for s in names {
                pooled.name(&n(s));
            }
            assert_eq!(pooled.wire(), &expected[..]);
        }
    }

    #[test]
    fn without_compression_writes_full_names() {
        let mut e = Encoder::without_compression();
        e.name(&n("example.com"));
        e.name(&n("example.com"));
        let buf = e.finish();
        assert_eq!(&buf[..], b"\x07example\x03com\x00\x07example\x03com\x00");
    }

    #[test]
    fn dict_survives_growth() {
        // More distinct suffixes than the initial 128 slots can hold at the
        // 7/8 load factor; later repeats must still compress to pointers.
        let mut e = Encoder::new();
        for i in 0..200 {
            e.name(&n(&format!("h{i}.zone{i}.example")));
        }
        let before = e.len();
        e.name(&n("h42.zone42.example"));
        assert_eq!(e.len() - before, 2, "repeat must be a single pointer");
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        for i in 0..200 {
            assert_eq!(d.name().unwrap(), n(&format!("h{i}.zone{i}.example")));
        }
        assert_eq!(d.name().unwrap(), n("h42.zone42.example"));
    }

    #[test]
    fn skip_name_lands_after_inline_and_pointer_forms() {
        let mut e = Encoder::new();
        e.name(&n("example.com"));
        e.name(&n("www.example.com")); // "www" + pointer
        e.u16(0xbeef);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        d.skip_name().unwrap();
        d.skip_name().unwrap();
        assert_eq!(d.u16().unwrap(), 0xbeef);
        assert!(d.is_exhausted());
    }

    #[test]
    fn skip_name_reports_structural_errors() {
        let mut d = Decoder::new(&[0x41, 0x00]);
        assert_eq!(d.skip_name().unwrap_err(), ProtoError::BadLabelType(0x41));
        let mut d = Decoder::new(&[0x05, b'a']);
        assert_eq!(d.skip_name().unwrap_err(), ProtoError::Truncated);
        let mut d = Decoder::new(&[0xc0]);
        assert_eq!(d.skip_name().unwrap_err(), ProtoError::Truncated);
    }

    #[test]
    fn name_is_compares_without_allocating() {
        let mut e = Encoder::new();
        e.name(&n("example.com"));
        e.name(&n("WWW.Example.COM"));
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        d.skip_name().unwrap();
        assert!(d.name_is(&n("www.example.com")));
        assert!(!d.name_is(&n("ftp.example.com")));
        assert!(!d.name_is(&n("www.example.org")));
        // Cursor unmoved: the real read still works.
        assert_eq!(d.name().unwrap(), n("www.example.com"));
    }

    #[test]
    fn len_backpatching() {
        let mut e = Encoder::new();
        let m = e.begin_len();
        e.bytes(b"hello");
        e.patch_len(m);
        let buf = e.finish();
        assert_eq!(buf, b"\x00\x05hello");
    }
}
