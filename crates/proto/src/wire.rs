//! Low-level wire encoding and decoding with RFC 1035 name compression.

use std::collections::HashMap;

use crate::error::ProtoError;
use crate::name::Name;

/// Highest buffer offset a 14-bit compression pointer can reference.
const MAX_POINTER_TARGET: usize = 0x3fff;
/// Maximum pointer jumps followed while decoding one name.
const MAX_JUMPS: usize = 64;

/// Wire encoder with a compression dictionary.
pub struct Encoder {
    buf: Vec<u8>,
    /// Canonical (lowercased) wire form of a name suffix → offset where that
    /// suffix was written.
    dict: HashMap<Vec<u8>, u16>,
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::with_capacity(512), dict: HashMap::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder and returns the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Writes a name with compression against previously written names.
    pub fn name(&mut self, name: &Name) {
        self.name_inner(name, true);
    }

    /// Writes a name without compression (required inside RRSIG/NSEC RDATA),
    /// but still *registers* its suffixes so later names may point at it.
    pub fn name_uncompressed(&mut self, name: &Name) {
        self.name_inner(name, false);
    }

    fn name_inner(&mut self, name: &Name, allow_pointer: bool) {
        let labels: Vec<&[u8]> = name.labels().collect();
        for i in 0..labels.len() {
            let suffix_key: Vec<u8> = {
                let mut k = Vec::new();
                for l in &labels[i..] {
                    k.push(l.len() as u8);
                    k.extend(l.iter().map(|c| c.to_ascii_lowercase()));
                }
                k.push(0);
                k
            };
            if allow_pointer {
                if let Some(&off) = self.dict.get(&suffix_key) {
                    self.u16(0xc000 | off);
                    return;
                }
            }
            if self.buf.len() <= MAX_POINTER_TARGET {
                self.dict.entry(suffix_key).or_insert(self.buf.len() as u16);
            }
            let l = labels[i];
            self.buf.push(l.len() as u8);
            self.buf.extend_from_slice(l);
        }
        self.buf.push(0);
    }

    /// Reserves a two-byte length field (e.g. RDLENGTH); returns a marker to
    /// pass to [`Encoder::patch_len`] once the variable-size body is written.
    pub fn begin_len(&mut self) -> usize {
        let marker = self.buf.len();
        self.u16(0);
        marker
    }

    /// Backpatches the length field at `marker` with the number of bytes
    /// written since it.
    pub fn patch_len(&mut self, marker: usize) {
        let len = self.buf.len() - marker - 2;
        debug_assert!(len <= u16::MAX as usize, "rdata longer than 64KiB");
        self.buf[marker..marker + 2].copy_from_slice(&(len as u16).to_be_bytes());
    }

    /// Overwrites the big-endian u16 at an absolute offset (header counts).
    pub fn patch_u16_at(&mut self, offset: usize, v: u16) {
        self.buf[offset..offset + 2].copy_from_slice(&v.to_be_bytes());
    }
}

/// Wire decoder over a complete message buffer.
///
/// The decoder always holds the *entire* message (compression pointers may
/// reference any earlier offset) plus a cursor.
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder at offset zero.
    pub fn new(data: &'a [u8]) -> Self {
        Decoder { data, pos: 0 }
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining after the cursor.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when the cursor has consumed the whole buffer.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.data.len()
    }

    /// Moves the cursor to an absolute offset (used after length-delimited
    /// sections).
    pub fn seek(&mut self, pos: usize) -> Result<(), ProtoError> {
        if pos > self.data.len() {
            return Err(ProtoError::Truncated);
        }
        self.pos = pos;
        Ok(())
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, ProtoError> {
        let b = *self.data.get(self.pos).ok_or(ProtoError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, ProtoError> {
        let s = self.take(2)?;
        Ok(u16::from_be_bytes([s[0], s[1]]))
    }

    /// Reads a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, ProtoError> {
        let s = self.take(4)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return Err(ProtoError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a possibly-compressed name. Pointers must reference earlier
    /// offsets; at most [`MAX_JUMPS`] jumps are followed.
    pub fn name(&mut self) -> Result<Name, ProtoError> {
        let mut labels: Vec<Vec<u8>> = Vec::new();
        let mut pos = self.pos;
        let mut jumped = false;
        let mut jumps = 0;
        let mut lowest_target = self.pos;
        loop {
            let len = *self.data.get(pos).ok_or(ProtoError::Truncated)?;
            match len {
                0 => {
                    if !jumped {
                        self.pos = pos + 1;
                    }
                    return Name::from_labels(labels);
                }
                l if l & 0xc0 == 0xc0 => {
                    let lo = *self.data.get(pos + 1).ok_or(ProtoError::Truncated)?;
                    let target = (((l & 0x3f) as usize) << 8) | lo as usize;
                    // Pointers must go strictly backwards relative to the
                    // earliest offset visited; this rules out loops.
                    if target >= lowest_target {
                        return Err(ProtoError::BadPointer);
                    }
                    lowest_target = target;
                    jumps += 1;
                    if jumps > MAX_JUMPS {
                        return Err(ProtoError::BadPointer);
                    }
                    if !jumped {
                        self.pos = pos + 2;
                        jumped = true;
                    }
                    pos = target;
                }
                l if l & 0xc0 != 0 => return Err(ProtoError::BadLabelType(l)),
                l => {
                    let start = pos + 1;
                    let end = start + l as usize;
                    if end > self.data.len() {
                        return Err(ProtoError::Truncated);
                    }
                    labels.push(self.data[start..end].to_vec());
                    pos = end;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn ints_roundtrip() {
        let mut e = Encoder::new();
        e.u8(0xab);
        e.u16(0x1234);
        e.u32(0xdeadbeef);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u8().unwrap(), 0xab);
        assert_eq!(d.u16().unwrap(), 0x1234);
        assert_eq!(d.u32().unwrap(), 0xdeadbeef);
        assert!(d.is_exhausted());
    }

    #[test]
    fn name_roundtrip_uncompressed() {
        let mut e = Encoder::new();
        e.name(&n("www.example.com"));
        let buf = e.finish();
        assert_eq!(buf, b"\x03www\x07example\x03com\x00");
        let mut d = Decoder::new(&buf);
        assert_eq!(d.name().unwrap(), n("www.example.com"));
        assert!(d.is_exhausted());
    }

    #[test]
    fn root_name_is_single_zero() {
        let mut e = Encoder::new();
        e.name(&Name::root());
        let buf = e.finish();
        assert_eq!(buf, vec![0]);
        let mut d = Decoder::new(&buf);
        assert!(d.name().unwrap().is_root());
    }

    #[test]
    fn compression_reuses_suffix() {
        let mut e = Encoder::new();
        e.name(&n("www.example.com"));
        e.name(&n("mail.example.com"));
        e.name(&n("example.com"));
        let buf = e.finish();
        // Second name: "mail" label + pointer (2 bytes) to offset 4.
        let first_len = n("www.example.com").wire_len();
        assert_eq!(&buf[first_len..first_len + 5], b"\x04mail");
        assert_eq!(buf[first_len + 5] & 0xc0, 0xc0);
        let mut d = Decoder::new(&buf);
        assert_eq!(d.name().unwrap(), n("www.example.com"));
        assert_eq!(d.name().unwrap(), n("mail.example.com"));
        assert_eq!(d.name().unwrap(), n("example.com"));
        assert!(d.is_exhausted());
    }

    #[test]
    fn compression_is_case_insensitive() {
        let mut e = Encoder::new();
        e.name(&n("www.EXAMPLE.com"));
        e.name(&n("ftp.example.COM"));
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        let a = d.name().unwrap();
        let b = d.name().unwrap();
        assert_eq!(a, n("www.example.com"));
        assert_eq!(b, n("ftp.example.com"));
        // Whole-message size shows the suffix was shared.
        assert!(buf.len() < n("www.example.com").wire_len() + n("ftp.example.com").wire_len());
    }

    #[test]
    fn identical_name_compresses_to_single_pointer() {
        let mut e = Encoder::new();
        e.name(&n("example.com"));
        let before = e.len();
        e.name(&n("example.com"));
        let buf = e.finish();
        assert_eq!(buf.len() - before, 2, "second copy should be one pointer");
    }

    #[test]
    fn uncompressed_mode_never_emits_pointers() {
        let mut e = Encoder::new();
        e.name(&n("example.com"));
        let before = e.len();
        e.name_uncompressed(&n("example.com"));
        let buf = e.finish();
        assert_eq!(&buf[before..], b"\x07example\x03com\x00");
        let mut d = Decoder::new(&buf);
        assert_eq!(d.name().unwrap(), n("example.com"));
        assert_eq!(d.name().unwrap(), n("example.com"));
    }

    #[test]
    fn forward_pointer_rejected() {
        // Pointer at offset 0 pointing to offset 1 (forward): invalid.
        let buf = [0xc0, 0x01, 0x00];
        let mut d = Decoder::new(&buf);
        assert_eq!(d.name().unwrap_err(), ProtoError::BadPointer);
    }

    #[test]
    fn self_pointer_rejected() {
        let buf = [0xc0, 0x00];
        let mut d = Decoder::new(&buf);
        assert_eq!(d.name().unwrap_err(), ProtoError::BadPointer);
    }

    #[test]
    fn pointer_loop_rejected() {
        // name at 0 points to 2, which points back to 0.
        let buf = [0xc0, 0x02, 0xc0, 0x00];
        let mut d = Decoder::new(&buf);
        assert_eq!(d.name().unwrap_err(), ProtoError::BadPointer);
        let mut d2 = Decoder::new(&buf);
        d2.seek(2).unwrap();
        assert!(d2.name().is_err());
    }

    #[test]
    fn truncated_label_rejected() {
        let buf = [0x05, b'a', b'b'];
        let mut d = Decoder::new(&buf);
        assert_eq!(d.name().unwrap_err(), ProtoError::Truncated);
    }

    #[test]
    fn missing_terminator_rejected() {
        let buf = [0x01, b'a'];
        let mut d = Decoder::new(&buf);
        assert_eq!(d.name().unwrap_err(), ProtoError::Truncated);
    }

    #[test]
    fn reserved_label_type_rejected() {
        let buf = [0x41, 0x00];
        let mut d = Decoder::new(&buf);
        assert_eq!(d.name().unwrap_err(), ProtoError::BadLabelType(0x41));
    }

    #[test]
    fn cursor_lands_after_pointer() {
        let mut e = Encoder::new();
        e.name(&n("example.com"));
        e.name(&n("example.com"));
        e.u16(0xbeef);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        d.name().unwrap();
        d.name().unwrap();
        assert_eq!(d.u16().unwrap(), 0xbeef);
    }

    #[test]
    fn len_backpatching() {
        let mut e = Encoder::new();
        let m = e.begin_len();
        e.bytes(b"hello");
        e.patch_len(m);
        let buf = e.finish();
        assert_eq!(buf, b"\x00\x05hello");
    }
}
