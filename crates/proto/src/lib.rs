//! # rootless-proto
//!
//! The DNS wire protocol, implemented from scratch for the `rootless`
//! workspace (reproduction of *On Eliminating Root Nameservers from the DNS*,
//! HotNets 2019).
//!
//! * [`name`] — domain names: presentation/wire formats, case-insensitive
//!   comparison, RFC 4034 canonical ordering.
//! * [`rr`] — record types, classes, and typed RDATA (A, AAAA, NS, SOA,
//!   CNAME, MX, TXT, PTR, DS, DNSKEY, RRSIG, NSEC, ZONEMD, unknown).
//! * [`message`] — full messages with header flags, four sections, EDNS(0),
//!   and RFC 1035 name compression.
//! * [`view`] — borrowed, lazy decoding for hot paths that never need owned
//!   records.
//! * [`wire`] — the low-level encoder/decoder, with a poolable
//!   allocation-free encode path.
//!
//! Everything round-trips: `Message::decode(&msg.encode()) == msg` is a
//! property-tested invariant (see `tests/` in this crate).

#![warn(missing_docs)]

pub mod error;
pub mod message;
pub mod name;
pub mod rr;
pub mod view;
pub mod wire;

pub use error::ProtoError;
pub use message::{Edns, Header, Message, Opcode, Question, Rcode};
pub use name::Name;
pub use rr::{RClass, RData, RType, Record};
pub use view::{MessageView, QuestionView, RecordIter, RecordView, Section};
