//! Resource records: types, classes, typed RDATA, and wire serialization.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::error::ProtoError;
use crate::name::Name;
use crate::wire::{Decoder, Encoder};

/// A DNS resource-record (and query) type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RType {
    /// IPv4 host address.
    A,
    /// Authoritative nameserver.
    NS,
    /// Canonical name alias.
    CNAME,
    /// Start of authority.
    SOA,
    /// Pointer (reverse lookup).
    PTR,
    /// Mail exchange.
    MX,
    /// Text strings.
    TXT,
    /// IPv6 host address.
    AAAA,
    /// Service locator (RFC 2782).
    SRV,
    /// Certification authority authorization (RFC 8659).
    CAA,
    /// EDNS(0) pseudo-record.
    OPT,
    /// Delegation signer.
    DS,
    /// DNSSEC signature.
    RRSIG,
    /// Authenticated denial of existence.
    NSEC,
    /// DNSSEC public key.
    DNSKEY,
    /// Message digest over zone data (RFC 8976).
    ZONEMD,
    /// Whole-zone transfer (query type only).
    AXFR,
    /// All records (query type only).
    ANY,
    /// Any type this implementation does not model.
    Unknown(u16),
}

impl RType {
    /// Wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RType::A => 1,
            RType::NS => 2,
            RType::CNAME => 5,
            RType::SOA => 6,
            RType::PTR => 12,
            RType::MX => 15,
            RType::TXT => 16,
            RType::AAAA => 28,
            RType::SRV => 33,
            RType::CAA => 257,
            RType::OPT => 41,
            RType::DS => 43,
            RType::RRSIG => 46,
            RType::NSEC => 47,
            RType::DNSKEY => 48,
            RType::ZONEMD => 63,
            RType::AXFR => 252,
            RType::ANY => 255,
            RType::Unknown(v) => v,
        }
    }

    /// From wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RType::A,
            2 => RType::NS,
            5 => RType::CNAME,
            6 => RType::SOA,
            12 => RType::PTR,
            15 => RType::MX,
            16 => RType::TXT,
            28 => RType::AAAA,
            33 => RType::SRV,
            257 => RType::CAA,
            41 => RType::OPT,
            43 => RType::DS,
            46 => RType::RRSIG,
            47 => RType::NSEC,
            48 => RType::DNSKEY,
            63 => RType::ZONEMD,
            252 => RType::AXFR,
            255 => RType::ANY,
            other => RType::Unknown(other),
        }
    }

    /// True for query-only meta types that never appear as stored records.
    pub fn is_meta(self) -> bool {
        matches!(self, RType::OPT | RType::AXFR | RType::ANY)
    }

    /// Presentation mnemonic.
    pub fn mnemonic(self) -> String {
        match self {
            RType::A => "A".into(),
            RType::NS => "NS".into(),
            RType::CNAME => "CNAME".into(),
            RType::SOA => "SOA".into(),
            RType::PTR => "PTR".into(),
            RType::MX => "MX".into(),
            RType::TXT => "TXT".into(),
            RType::AAAA => "AAAA".into(),
            RType::SRV => "SRV".into(),
            RType::CAA => "CAA".into(),
            RType::OPT => "OPT".into(),
            RType::DS => "DS".into(),
            RType::RRSIG => "RRSIG".into(),
            RType::NSEC => "NSEC".into(),
            RType::DNSKEY => "DNSKEY".into(),
            RType::ZONEMD => "ZONEMD".into(),
            RType::AXFR => "AXFR".into(),
            RType::ANY => "ANY".into(),
            RType::Unknown(v) => format!("TYPE{v}"),
        }
    }

    /// Parses a presentation mnemonic, including RFC 3597 `TYPEnnn`.
    pub fn parse(s: &str) -> Option<Self> {
        let up = s.to_ascii_uppercase();
        Some(match up.as_str() {
            "A" => RType::A,
            "NS" => RType::NS,
            "CNAME" => RType::CNAME,
            "SOA" => RType::SOA,
            "PTR" => RType::PTR,
            "MX" => RType::MX,
            "TXT" => RType::TXT,
            "AAAA" => RType::AAAA,
            "SRV" => RType::SRV,
            "CAA" => RType::CAA,
            "OPT" => RType::OPT,
            "DS" => RType::DS,
            "RRSIG" => RType::RRSIG,
            "NSEC" => RType::NSEC,
            "DNSKEY" => RType::DNSKEY,
            "ZONEMD" => RType::ZONEMD,
            "AXFR" => RType::AXFR,
            "ANY" => RType::ANY,
            _ => {
                let n = up.strip_prefix("TYPE")?.parse::<u16>().ok()?;
                RType::from_u16(n)
            }
        })
    }
}

impl fmt::Display for RType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// A DNS class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RClass {
    /// Internet.
    IN,
    /// Chaos (used operationally for server identity queries).
    CH,
    /// Any class (query only).
    ANY,
    /// Unmodeled class.
    Unknown(u16),
}

impl RClass {
    /// Wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RClass::IN => 1,
            RClass::CH => 3,
            RClass::ANY => 255,
            RClass::Unknown(v) => v,
        }
    }

    /// From wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RClass::IN,
            3 => RClass::CH,
            255 => RClass::ANY,
            other => RClass::Unknown(other),
        }
    }
}

impl fmt::Display for RClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RClass::IN => write!(f, "IN"),
            RClass::CH => write!(f, "CH"),
            RClass::ANY => write!(f, "ANY"),
            RClass::Unknown(v) => write!(f, "CLASS{v}"),
        }
    }
}

/// SOA RDATA fields.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Soa {
    /// Primary master name.
    pub mname: Name,
    /// Responsible mailbox (encoded as a name).
    pub rname: Name,
    /// Zone serial number.
    pub serial: u32,
    /// Secondary refresh interval, seconds.
    pub refresh: u32,
    /// Retry interval, seconds.
    pub retry: u32,
    /// Expiry bound, seconds.
    pub expire: u32,
    /// Negative-caching TTL, seconds.
    pub minimum: u32,
}

/// RRSIG RDATA fields (RFC 4034 §3).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Rrsig {
    /// Type of the RRset this signature covers.
    pub type_covered: RType,
    /// Signing algorithm number. This workspace uses `250` for its simulated
    /// HMAC-SHA256 scheme (private-use range).
    pub algorithm: u8,
    /// Label count of the owner name (no wildcard expansion here).
    pub labels: u8,
    /// TTL of the covered RRset at signing time.
    pub original_ttl: u32,
    /// Expiration, seconds since the simulation epoch.
    pub expiration: u32,
    /// Inception, seconds since the simulation epoch.
    pub inception: u32,
    /// Key tag of the signing DNSKEY.
    pub key_tag: u16,
    /// Name of the zone holding the signing key.
    pub signer: Name,
    /// Signature bytes.
    pub signature: Vec<u8>,
}

/// DNSKEY RDATA fields (RFC 4034 §2).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Dnskey {
    /// Flags; bit 7 (value 257 vs 256) distinguishes KSK from ZSK.
    pub flags: u16,
    /// Always 3.
    pub protocol: u8,
    /// Algorithm number (250 = simulated HMAC-SHA256).
    pub algorithm: u8,
    /// Public key bytes.
    pub public_key: Vec<u8>,
}

impl Dnskey {
    /// RFC 4034 appendix B key tag over the canonical RDATA.
    pub fn key_tag(&self) -> u16 {
        let mut rdata = Vec::new();
        rdata.extend_from_slice(&self.flags.to_be_bytes());
        rdata.push(self.protocol);
        rdata.push(self.algorithm);
        rdata.extend_from_slice(&self.public_key);
        let mut acc: u32 = 0;
        for (i, &b) in rdata.iter().enumerate() {
            acc += if i % 2 == 0 { (b as u32) << 8 } else { b as u32 };
        }
        acc += (acc >> 16) & 0xffff;
        (acc & 0xffff) as u16
    }

    /// True if the Secure Entry Point (KSK) flag is set.
    pub fn is_ksk(&self) -> bool {
        self.flags & 0x0001 != 0
    }
}

/// DS RDATA fields (RFC 4034 §5).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Ds {
    /// Key tag of the referenced DNSKEY.
    pub key_tag: u16,
    /// Algorithm of the referenced key.
    pub algorithm: u8,
    /// Digest algorithm (2 = SHA-256).
    pub digest_type: u8,
    /// Digest of owner name + DNSKEY RDATA.
    pub digest: Vec<u8>,
}

/// ZONEMD RDATA fields (RFC 8976).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Zonemd {
    /// Serial of the zone version this digest covers.
    pub serial: u32,
    /// Scheme (1 = SIMPLE).
    pub scheme: u8,
    /// Hash algorithm (1 = SHA-384 in the RFC; this workspace uses 240 for
    /// its from-scratch SHA-256).
    pub hash_algorithm: u8,
    /// The digest bytes.
    pub digest: Vec<u8>,
}

/// SRV RDATA fields (RFC 2782).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Srv {
    /// Selection priority (lower wins).
    pub priority: u16,
    /// Load-balancing weight among equal priorities.
    pub weight: u16,
    /// Service port.
    pub port: u16,
    /// Target host (uncompressed on the wire per RFC 2782).
    pub target: Name,
}

/// CAA RDATA fields (RFC 8659).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Caa {
    /// Flags; bit 7 = issuer-critical.
    pub flags: u8,
    /// Property tag (e.g. "issue", "issuewild", "iodef").
    pub tag: Vec<u8>,
    /// Property value.
    pub value: Vec<u8>,
}

/// Typed RDATA.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Nameserver.
    Ns(Name),
    /// Alias target.
    Cname(Name),
    /// Reverse pointer.
    Ptr(Name),
    /// Mail exchange: preference + host.
    Mx(u16, Name),
    /// Character strings (each ≤255 bytes).
    Txt(Vec<Vec<u8>>),
    /// Start of authority.
    Soa(Soa),
    /// Signature.
    Rrsig(Rrsig),
    /// Public key.
    Dnskey(Dnskey),
    /// Delegation signer digest.
    Ds(Ds),
    /// Denial of existence: next owner + type bitmap.
    Nsec(Name, Vec<RType>),
    /// Whole-zone digest.
    Zonemd(Zonemd),
    /// Service locator.
    Srv(Srv),
    /// CA authorization.
    Caa(Caa),
    /// Opaque RDATA for unmodeled types.
    Unknown(u16, Vec<u8>),
}

impl RData {
    /// The record type this RDATA belongs to.
    pub fn rtype(&self) -> RType {
        match self {
            RData::A(_) => RType::A,
            RData::Aaaa(_) => RType::AAAA,
            RData::Ns(_) => RType::NS,
            RData::Cname(_) => RType::CNAME,
            RData::Ptr(_) => RType::PTR,
            RData::Mx(..) => RType::MX,
            RData::Txt(_) => RType::TXT,
            RData::Soa(_) => RType::SOA,
            RData::Rrsig(_) => RType::RRSIG,
            RData::Dnskey(_) => RType::DNSKEY,
            RData::Ds(_) => RType::DS,
            RData::Nsec(..) => RType::NSEC,
            RData::Zonemd(_) => RType::ZONEMD,
            RData::Srv(_) => RType::SRV,
            RData::Caa(_) => RType::CAA,
            RData::Unknown(t, _) => RType::from_u16(*t),
        }
    }

    /// Encodes RDATA into `enc` (no length prefix; the caller handles
    /// RDLENGTH). Names in well-known types may be compressed.
    pub fn encode(&self, enc: &mut Encoder) {
        match self {
            RData::A(addr) => enc.bytes(&addr.octets()),
            RData::Aaaa(addr) => enc.bytes(&addr.octets()),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => enc.name(n),
            RData::Mx(pref, n) => {
                enc.u16(*pref);
                enc.name(n);
            }
            RData::Txt(strings) => {
                for s in strings {
                    enc.u8(s.len() as u8);
                    enc.bytes(s);
                }
            }
            RData::Soa(soa) => {
                enc.name(&soa.mname);
                enc.name(&soa.rname);
                enc.u32(soa.serial);
                enc.u32(soa.refresh);
                enc.u32(soa.retry);
                enc.u32(soa.expire);
                enc.u32(soa.minimum);
            }
            RData::Rrsig(sig) => {
                enc.u16(sig.type_covered.to_u16());
                enc.u8(sig.algorithm);
                enc.u8(sig.labels);
                enc.u32(sig.original_ttl);
                enc.u32(sig.expiration);
                enc.u32(sig.inception);
                enc.u16(sig.key_tag);
                enc.name_uncompressed(&sig.signer);
                enc.bytes(&sig.signature);
            }
            RData::Dnskey(k) => {
                enc.u16(k.flags);
                enc.u8(k.protocol);
                enc.u8(k.algorithm);
                enc.bytes(&k.public_key);
            }
            RData::Ds(ds) => {
                enc.u16(ds.key_tag);
                enc.u8(ds.algorithm);
                enc.u8(ds.digest_type);
                enc.bytes(&ds.digest);
            }
            RData::Nsec(next, types) => {
                enc.name_uncompressed(next);
                encode_type_bitmap(enc, types);
            }
            RData::Zonemd(z) => {
                enc.u32(z.serial);
                enc.u8(z.scheme);
                enc.u8(z.hash_algorithm);
                enc.bytes(&z.digest);
            }
            RData::Srv(srv) => {
                enc.u16(srv.priority);
                enc.u16(srv.weight);
                enc.u16(srv.port);
                enc.name_uncompressed(&srv.target);
            }
            RData::Caa(caa) => {
                enc.u8(caa.flags);
                enc.u8(caa.tag.len() as u8);
                enc.bytes(&caa.tag);
                enc.bytes(&caa.value);
            }
            RData::Unknown(_, bytes) => enc.bytes(bytes),
        }
    }

    /// Canonical RDATA bytes for DNSSEC hashing (RFC 4034 §6.2): embedded
    /// names lowercased and uncompressed.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        match self {
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => n.canonical_wire(),
            RData::Mx(pref, n) => {
                let mut out = pref.to_be_bytes().to_vec();
                out.extend(n.canonical_wire());
                out
            }
            RData::Srv(srv) => {
                let mut out = Vec::new();
                out.extend_from_slice(&srv.priority.to_be_bytes());
                out.extend_from_slice(&srv.weight.to_be_bytes());
                out.extend_from_slice(&srv.port.to_be_bytes());
                out.extend(srv.target.canonical_wire());
                out
            }
            RData::Soa(soa) => {
                let mut out = soa.mname.canonical_wire();
                out.extend(soa.rname.canonical_wire());
                for v in [soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum] {
                    out.extend_from_slice(&v.to_be_bytes());
                }
                out
            }
            other => {
                // No embedded names (or already-canonical names): reuse the
                // standard encoding via a throwaway encoder.
                let mut enc = Encoder::new();
                other.encode(&mut enc);
                enc.finish()
            }
        }
    }

    /// Decodes RDATA of type `rtype` from exactly `rdlen` bytes at the
    /// decoder's cursor.
    pub fn decode(dec: &mut Decoder<'_>, rtype: RType, rdlen: usize) -> Result<RData, ProtoError> {
        let start = dec.position();
        let end = start + rdlen;
        if dec.remaining() < rdlen {
            return Err(ProtoError::Truncated);
        }
        let rdata = match rtype {
            RType::A => {
                let b = dec.take(4)?;
                RData::A(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
            }
            RType::AAAA => {
                let b = dec.take(16)?;
                let mut o = [0u8; 16];
                o.copy_from_slice(b);
                RData::Aaaa(Ipv6Addr::from(o))
            }
            RType::NS => RData::Ns(dec.name()?),
            RType::CNAME => RData::Cname(dec.name()?),
            RType::PTR => RData::Ptr(dec.name()?),
            RType::MX => {
                let pref = dec.u16()?;
                RData::Mx(pref, dec.name()?)
            }
            RType::TXT => {
                let mut strings = Vec::new();
                while dec.position() < end {
                    let len = dec.u8()? as usize;
                    if dec.position() + len > end {
                        return Err(ProtoError::Truncated);
                    }
                    strings.push(dec.take(len)?.to_vec());
                }
                RData::Txt(strings)
            }
            RType::SOA => RData::Soa(Soa {
                mname: dec.name()?,
                rname: dec.name()?,
                serial: dec.u32()?,
                refresh: dec.u32()?,
                retry: dec.u32()?,
                expire: dec.u32()?,
                minimum: dec.u32()?,
            }),
            RType::RRSIG => {
                let type_covered = RType::from_u16(dec.u16()?);
                let algorithm = dec.u8()?;
                let labels = dec.u8()?;
                let original_ttl = dec.u32()?;
                let expiration = dec.u32()?;
                let inception = dec.u32()?;
                let key_tag = dec.u16()?;
                let signer = dec.name()?;
                if dec.position() > end {
                    return Err(ProtoError::Truncated);
                }
                let signature = dec.take(end - dec.position())?.to_vec();
                RData::Rrsig(Rrsig {
                    type_covered,
                    algorithm,
                    labels,
                    original_ttl,
                    expiration,
                    inception,
                    key_tag,
                    signer,
                    signature,
                })
            }
            RType::DNSKEY => {
                let flags = dec.u16()?;
                let protocol = dec.u8()?;
                let algorithm = dec.u8()?;
                let public_key = dec.take(end - dec.position())?.to_vec();
                RData::Dnskey(Dnskey { flags, protocol, algorithm, public_key })
            }
            RType::DS => {
                let key_tag = dec.u16()?;
                let algorithm = dec.u8()?;
                let digest_type = dec.u8()?;
                let digest = dec.take(end - dec.position())?.to_vec();
                RData::Ds(Ds { key_tag, algorithm, digest_type, digest })
            }
            RType::NSEC => {
                let next = dec.name()?;
                let types = decode_type_bitmap(dec, end)?;
                RData::Nsec(next, types)
            }
            RType::ZONEMD => {
                let serial = dec.u32()?;
                let scheme = dec.u8()?;
                let hash_algorithm = dec.u8()?;
                let digest = dec.take(end - dec.position())?.to_vec();
                RData::Zonemd(Zonemd { serial, scheme, hash_algorithm, digest })
            }
            RType::SRV => {
                let priority = dec.u16()?;
                let weight = dec.u16()?;
                let port = dec.u16()?;
                let target = dec.name()?;
                RData::Srv(Srv { priority, weight, port, target })
            }
            RType::CAA => {
                let flags = dec.u8()?;
                let tag_len = dec.u8()? as usize;
                if dec.position() + tag_len > end {
                    return Err(ProtoError::Truncated);
                }
                let tag = dec.take(tag_len)?.to_vec();
                let value = dec.take(end - dec.position())?.to_vec();
                RData::Caa(Caa { flags, tag, value })
            }
            other => RData::Unknown(other.to_u16(), dec.take(rdlen)?.to_vec()),
        };
        if dec.position() != end {
            return Err(ProtoError::BadRdataLength {
                rtype: rtype.to_u16(),
                declared: rdlen,
                consumed: dec.position() - start,
            });
        }
        Ok(rdata)
    }
}

fn encode_type_bitmap(enc: &mut Encoder, types: &[RType]) {
    let mut values: Vec<u16> = types.iter().map(|t| t.to_u16()).collect();
    values.sort_unstable();
    values.dedup();
    let mut i = 0;
    while i < values.len() {
        let window = (values[i] >> 8) as u8;
        let mut bitmap = [0u8; 32];
        let mut max_octet = 0usize;
        while i < values.len() && (values[i] >> 8) as u8 == window {
            let low = (values[i] & 0xff) as usize;
            bitmap[low / 8] |= 0x80 >> (low % 8);
            max_octet = max_octet.max(low / 8);
            i += 1;
        }
        enc.u8(window);
        enc.u8((max_octet + 1) as u8);
        enc.bytes(&bitmap[..=max_octet]);
    }
}

fn decode_type_bitmap(dec: &mut Decoder<'_>, end: usize) -> Result<Vec<RType>, ProtoError> {
    let mut types = Vec::new();
    while dec.position() < end {
        let window = dec.u8()?;
        let len = dec.u8()? as usize;
        if len == 0 || len > 32 || dec.position() + len > end {
            return Err(ProtoError::BadMessage("bad NSEC bitmap window"));
        }
        let octets = dec.take(len)?;
        for (oi, &octet) in octets.iter().enumerate() {
            for bit in 0..8 {
                if octet & (0x80 >> bit) != 0 {
                    let v = ((window as u16) << 8) | (oi * 8 + bit) as u16;
                    types.push(RType::from_u16(v));
                }
            }
        }
    }
    Ok(types)
}

/// A complete resource record.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Record {
    /// Owner name.
    pub name: Name,
    /// Class (always IN in this workspace's zones).
    pub class: RClass,
    /// Time to live, seconds.
    pub ttl: u32,
    /// Typed RDATA.
    pub rdata: RData,
}

impl Record {
    /// Convenience constructor for class IN.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Self {
        Record { name, class: RClass::IN, ttl, rdata }
    }

    /// The record type.
    pub fn rtype(&self) -> RType {
        self.rdata.rtype()
    }

    /// Encodes the full record (owner, type, class, TTL, RDLENGTH, RDATA).
    pub fn encode(&self, enc: &mut Encoder) {
        enc.name(&self.name);
        enc.u16(self.rtype().to_u16());
        enc.u16(self.class.to_u16());
        enc.u32(self.ttl);
        let marker = enc.begin_len();
        self.rdata.encode(enc);
        enc.patch_len(marker);
    }

    /// Decodes one record at the cursor.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Record, ProtoError> {
        let name = dec.name()?;
        let rtype = RType::from_u16(dec.u16()?);
        let class = RClass::from_u16(dec.u16()?);
        let ttl = dec.u32()?;
        let rdlen = dec.u16()? as usize;
        let rdata = RData::decode(dec, rtype, rdlen)?;
        Ok(Record { name, class, ttl, rdata })
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\t{}\t{}\t{}\t", self.name, self.ttl, self.class, self.rtype())?;
        match &self.rdata {
            RData::A(a) => write!(f, "{a}"),
            RData::Aaaa(a) => write!(f, "{a}"),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => write!(f, "{n}"),
            RData::Mx(p, n) => write!(f, "{p} {n}"),
            RData::Txt(ss) => {
                let parts: Vec<String> = ss
                    .iter()
                    .map(|s| format!("\"{}\"", String::from_utf8_lossy(s)))
                    .collect();
                write!(f, "{}", parts.join(" "))
            }
            RData::Soa(s) => write!(
                f,
                "{} {} {} {} {} {} {}",
                s.mname, s.rname, s.serial, s.refresh, s.retry, s.expire, s.minimum
            ),
            RData::Rrsig(s) => write!(
                f,
                "{} {} {} {} {} {} {} {} {}",
                s.type_covered,
                s.algorithm,
                s.labels,
                s.original_ttl,
                s.expiration,
                s.inception,
                s.key_tag,
                s.signer,
                rootless_util::hex::encode(&s.signature)
            ),
            RData::Dnskey(k) => write!(
                f,
                "{} {} {} {}",
                k.flags,
                k.protocol,
                k.algorithm,
                rootless_util::hex::encode(&k.public_key)
            ),
            RData::Ds(d) => write!(
                f,
                "{} {} {} {}",
                d.key_tag,
                d.algorithm,
                d.digest_type,
                rootless_util::hex::encode(&d.digest)
            ),
            RData::Nsec(next, types) => {
                write!(f, "{next}")?;
                for t in types {
                    write!(f, " {t}")?;
                }
                Ok(())
            }
            RData::Zonemd(z) => write!(
                f,
                "{} {} {} {}",
                z.serial,
                z.scheme,
                z.hash_algorithm,
                rootless_util::hex::encode(&z.digest)
            ),
            RData::Srv(s) => write!(f, "{} {} {} {}", s.priority, s.weight, s.port, s.target),
            RData::Caa(c) => write!(
                f,
                "{} {} \"{}\"",
                c.flags,
                String::from_utf8_lossy(&c.tag),
                String::from_utf8_lossy(&c.value)
            ),
            RData::Unknown(_, bytes) => {
                write!(f, "\\# {} {}", bytes.len(), rootless_util::hex::encode(bytes))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn roundtrip(record: Record) -> Record {
        let mut enc = Encoder::new();
        record.encode(&mut enc);
        let buf = enc.finish();
        let mut dec = Decoder::new(&buf);
        let out = Record::decode(&mut dec).expect("decode");
        assert!(dec.is_exhausted(), "trailing bytes after {record}");
        assert_eq!(out, record);
        out
    }

    #[test]
    fn rtype_u16_roundtrip() {
        for v in 0..300u16 {
            assert_eq!(RType::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn rtype_mnemonic_roundtrip() {
        for t in [
            RType::A,
            RType::NS,
            RType::CNAME,
            RType::SOA,
            RType::PTR,
            RType::MX,
            RType::TXT,
            RType::AAAA,
            RType::DS,
            RType::RRSIG,
            RType::NSEC,
            RType::DNSKEY,
            RType::ZONEMD,
            RType::Unknown(4711),
        ] {
            assert_eq!(RType::parse(&t.mnemonic()), Some(t), "{t:?}");
        }
        assert_eq!(RType::parse("ns"), Some(RType::NS), "case-insensitive");
        assert_eq!(RType::parse("bogus"), None);
    }

    #[test]
    fn a_record_roundtrip() {
        roundtrip(Record::new(n("a.root-servers.net"), 3_600_000, RData::A("198.41.0.4".parse().unwrap())));
    }

    #[test]
    fn aaaa_record_roundtrip() {
        roundtrip(Record::new(n("a.root-servers.net"), 3_600_000, RData::Aaaa("2001:503:ba3e::2:30".parse().unwrap())));
    }

    #[test]
    fn ns_record_roundtrip() {
        roundtrip(Record::new(n("com"), 172_800, RData::Ns(n("a.gtld-servers.net"))));
    }

    #[test]
    fn soa_record_roundtrip() {
        roundtrip(Record::new(
            Name::root(),
            86_400,
            RData::Soa(Soa {
                mname: n("a.root-servers.net"),
                rname: n("nstld.verisign-grs.com"),
                serial: 2019_060_700,
                refresh: 1_800,
                retry: 900,
                expire: 604_800,
                minimum: 86_400,
            }),
        ));
    }

    #[test]
    fn txt_record_roundtrip() {
        roundtrip(Record::new(
            n("example.com"),
            300,
            RData::Txt(vec![b"v=spf1 -all".to_vec(), b"second string".to_vec()]),
        ));
    }

    #[test]
    fn txt_empty_string_roundtrip() {
        roundtrip(Record::new(n("e.com"), 1, RData::Txt(vec![vec![]])));
    }

    #[test]
    fn mx_record_roundtrip() {
        roundtrip(Record::new(n("example.com"), 300, RData::Mx(10, n("mail.example.com"))));
    }

    #[test]
    fn ds_record_roundtrip() {
        roundtrip(Record::new(
            n("com"),
            86_400,
            RData::Ds(Ds { key_tag: 30909, algorithm: 250, digest_type: 2, digest: vec![7; 32] }),
        ));
    }

    #[test]
    fn dnskey_roundtrip_and_key_tag_stability() {
        let key = Dnskey { flags: 257, protocol: 3, algorithm: 250, public_key: vec![1, 2, 3, 4, 5, 6, 7, 8] };
        let tag = key.key_tag();
        assert!(key.is_ksk());
        roundtrip(Record::new(Name::root(), 172_800, RData::Dnskey(key.clone())));
        assert_eq!(tag, key.key_tag(), "key tag must be deterministic");
        let zsk = Dnskey { flags: 256, ..key };
        assert!(!zsk.is_ksk());
        assert_ne!(zsk.key_tag(), tag);
    }

    #[test]
    fn rrsig_roundtrip() {
        roundtrip(Record::new(
            n("com"),
            172_800,
            RData::Rrsig(Rrsig {
                type_covered: RType::NS,
                algorithm: 250,
                labels: 1,
                original_ttl: 172_800,
                expiration: 1_000_000,
                inception: 0,
                key_tag: 12345,
                signer: Name::root(),
                signature: vec![0xab; 32],
            }),
        ));
    }

    #[test]
    fn nsec_roundtrip_with_bitmap() {
        roundtrip(Record::new(
            n("com"),
            86_400,
            RData::Nsec(n("community"), vec![RType::NS, RType::DS, RType::RRSIG, RType::NSEC]),
        ));
    }

    #[test]
    fn nsec_bitmap_multiple_windows() {
        // Type 1 (window 0) and type 257 (window 1).
        roundtrip(Record::new(
            n("x"),
            60,
            RData::Nsec(n("y"), vec![RType::A, RType::Unknown(300), RType::Unknown(1234)]),
        ));
    }

    #[test]
    fn nsec_bitmap_sorted_and_deduped() {
        let mut enc1 = Encoder::new();
        RData::Nsec(n("y"), vec![RType::NS, RType::A, RType::NS]).encode(&mut enc1);
        let mut enc2 = Encoder::new();
        RData::Nsec(n("y"), vec![RType::A, RType::NS]).encode(&mut enc2);
        assert_eq!(enc1.finish(), enc2.finish());
    }

    #[test]
    fn zonemd_roundtrip() {
        roundtrip(Record::new(
            Name::root(),
            86_400,
            RData::Zonemd(Zonemd { serial: 2019_060_700, scheme: 1, hash_algorithm: 240, digest: vec![9; 32] }),
        ));
    }

    #[test]
    fn srv_record_roundtrip() {
        roundtrip(Record::new(
            n("_dns._udp.example.com"),
            300,
            RData::Srv(Srv { priority: 10, weight: 60, port: 53, target: n("ns1.example.com") }),
        ));
    }

    #[test]
    fn caa_record_roundtrip() {
        roundtrip(Record::new(
            n("example.com"),
            300,
            RData::Caa(Caa { flags: 128, tag: b"issue".to_vec(), value: b"ca.example.net".to_vec() }),
        ));
    }

    #[test]
    fn caa_empty_value_roundtrip() {
        roundtrip(Record::new(
            n("e.com"),
            1,
            RData::Caa(Caa { flags: 0, tag: b"iodef".to_vec(), value: vec![] }),
        ));
    }

    #[test]
    fn srv_canonical_lowercases_target() {
        let a = RData::Srv(Srv { priority: 1, weight: 2, port: 3, target: n("NS1.Example.COM") });
        let b = RData::Srv(Srv { priority: 1, weight: 2, port: 3, target: n("ns1.example.com") });
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
    }

    #[test]
    fn unknown_type_roundtrip() {
        roundtrip(Record::new(n("x.example"), 60, RData::Unknown(4711, vec![1, 2, 3])));
    }

    #[test]
    fn rdlength_mismatch_detected() {
        // Hand-encode an A record with RDLENGTH 5 but 5 bytes of rdata that
        // the decoder consumes only 4 of.
        let mut enc = Encoder::new();
        enc.name(&n("x"));
        enc.u16(RType::A.to_u16());
        enc.u16(RClass::IN.to_u16());
        enc.u32(60);
        enc.u16(5);
        enc.bytes(&[1, 2, 3, 4, 9]);
        let buf = enc.finish();
        let mut dec = Decoder::new(&buf);
        assert!(matches!(Record::decode(&mut dec), Err(ProtoError::BadRdataLength { .. })));
    }

    #[test]
    fn truncated_rdata_detected() {
        let mut enc = Encoder::new();
        enc.name(&n("x"));
        enc.u16(RType::A.to_u16());
        enc.u16(RClass::IN.to_u16());
        enc.u32(60);
        enc.u16(4);
        enc.bytes(&[1, 2]);
        let buf = enc.finish();
        let mut dec = Decoder::new(&buf);
        assert!(Record::decode(&mut dec).is_err());
    }

    #[test]
    fn soa_rdata_names_compress_against_message() {
        let mut enc = Encoder::new();
        enc.name(&n("a.root-servers.net"));
        let before = enc.len();
        RData::Ns(n("a.root-servers.net")).encode(&mut enc);
        assert_eq!(enc.len() - before, 2, "NS rdata should be a single pointer");
    }

    #[test]
    fn canonical_bytes_lowercase_names() {
        let rd = RData::Ns(n("A.GTLD-servers.NET"));
        let canon = rd.canonical_bytes();
        assert_eq!(canon, n("a.gtld-servers.net").canonical_wire());
    }

    #[test]
    fn display_formats() {
        let r = Record::new(n("com"), 172_800, RData::Ns(n("a.gtld-servers.net")));
        assert_eq!(r.to_string(), "com.\t172800\tIN\tNS\ta.gtld-servers.net.");
    }
}
