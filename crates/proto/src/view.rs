//! Borrowed, lazy decoding: [`MessageView`] parses the header and question
//! eagerly but walks the record sections lazily over the input slice, so
//! fast paths (QR-bit check, txid match, qname compare, referral scan) never
//! materialize owned [`Record`]s. [`MessageView::to_owned`] bridges to the
//! eager [`Message`] with identical semantics to the original decoder.
//!
//! # Invariants
//!
//! * `parse` validates the fixed header and the *structure* of the question
//!   section (label syntax, bounds). Record sections and compression-pointer
//!   targets are validated only when walked or materialized — a view with a
//!   lying ANCOUNT parses fine and surfaces the error from its iterator.
//! * Skipping a name never chases pointers (a pointer terminates the
//!   in-stream encoding), so iterating records is O(bytes in the buffer).
//! * Name comparisons (`qname_is`, `RecordView::name_is`) follow pointers
//!   with the decoder's jump and strictly-backward limits and never allocate.

use crate::error::ProtoError;
use crate::message::{Edns, Header, Message, Question};
use crate::name::Name;
use crate::rr::{RClass, RData, RType, Record};
use crate::wire::Decoder;

/// Offset of the question section: a DNS header is always 12 bytes.
const HEADER_LEN: usize = 12;

/// Which message section a record was found in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Section {
    /// Answer section.
    Answer,
    /// Authority section.
    Authority,
    /// Additional section (includes the OPT pseudo-record).
    Additional,
}

/// A zero-copy view over an encoded message.
#[derive(Clone, Debug)]
pub struct MessageView<'a> {
    buf: &'a [u8],
    header: Header,
    qdcount: u16,
    ancount: u16,
    nscount: u16,
    arcount: u16,
    question: Option<QuestionView<'a>>,
    records_start: usize,
}

impl<'a> MessageView<'a> {
    /// Parses the header and question section. Record sections are left for
    /// lazy iteration; see the module invariants.
    pub fn parse(buf: &'a [u8]) -> Result<MessageView<'a>, ProtoError> {
        let mut dec = Decoder::new(buf);
        let id = dec.u16()?;
        let flags = dec.u16()?;
        let header = Header::from_flags_word(id, flags);
        let qdcount = dec.u16()?;
        let ancount = dec.u16()?;
        let nscount = dec.u16()?;
        let arcount = dec.u16()?;
        let mut question = None;
        for i in 0..qdcount {
            let name_off = dec.position();
            dec.skip_name()?;
            let qtype = RType::from_u16(dec.u16()?);
            let qclass = RClass::from_u16(dec.u16()?);
            if i == 0 {
                question = Some(QuestionView { buf, name_off, qtype, qclass });
            }
        }
        Ok(MessageView {
            buf,
            header,
            qdcount,
            ancount,
            nscount,
            arcount,
            question,
            records_start: dec.position(),
        })
    }

    /// The parsed header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// The raw bytes this view borrows.
    pub fn wire(&self) -> &'a [u8] {
        self.buf
    }

    /// The first question, if any.
    pub fn question(&self) -> Option<&QuestionView<'a>> {
        self.question.as_ref()
    }

    /// Declared record counts `(answers, authorities, additionals)`.
    pub fn record_counts(&self) -> (u16, u16, u16) {
        (self.ancount, self.nscount, self.arcount)
    }

    /// Declared question count (QDCOUNT). Serving fast paths that rebuild
    /// a query from its view need this to know the first question is the
    /// *only* one.
    pub fn question_count(&self) -> u16 {
        self.qdcount
    }

    /// Lazily walks all records in section order. Each item is a borrowed
    /// [`RecordView`]; the first malformed record yields an `Err` and fuses
    /// the iterator.
    pub fn records(&self) -> RecordIter<'a> {
        let mut dec = Decoder::new(self.buf);
        // records_start came from parse() and is in bounds.
        dec.seek(self.records_start).expect("records_start in bounds");
        RecordIter {
            dec,
            an: self.ancount,
            ns: self.nscount,
            ar: self.arcount,
            failed: false,
        }
    }

    /// Materializes the full [`Message`], with semantics identical to the
    /// original eager decoder: compression pointers validated, EDNS OPT
    /// extracted from the additional section (exactly one, root owner),
    /// trailing bytes rejected.
    pub fn to_owned(&self) -> Result<Message, ProtoError> {
        let mut dec = Decoder::new(self.buf);
        dec.seek(HEADER_LEN)?;
        let mut questions = Vec::with_capacity(self.qdcount as usize);
        for _ in 0..self.qdcount {
            let qname = dec.name()?;
            let qtype = RType::from_u16(dec.u16()?);
            let qclass = RClass::from_u16(dec.u16()?);
            questions.push(Question { qname, qtype, qclass });
        }

        let read_section = |dec: &mut Decoder<'_>, n: usize| -> Result<Vec<Record>, ProtoError> {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(Record::decode(dec)?);
            }
            Ok(out)
        };
        let answers = read_section(&mut dec, self.ancount as usize)?;
        let authorities = read_section(&mut dec, self.nscount as usize)?;
        let raw_additionals = read_section(&mut dec, self.arcount as usize)?;

        let mut additionals = Vec::with_capacity(raw_additionals.len());
        let mut edns = None;
        for r in raw_additionals {
            if r.rtype() == RType::OPT {
                if edns.is_some() {
                    return Err(ProtoError::BadMessage("multiple OPT records"));
                }
                if !r.name.is_root() {
                    return Err(ProtoError::BadMessage("OPT owner must be root"));
                }
                edns = Some(Edns {
                    udp_payload_size: r.class.to_u16(),
                    extended_rcode: (r.ttl >> 24) as u8,
                    version: (r.ttl >> 16) as u8,
                    dnssec_ok: r.ttl & (1 << 15) != 0,
                });
            } else {
                additionals.push(r);
            }
        }

        if !dec.is_exhausted() {
            return Err(ProtoError::BadMessage("trailing bytes"));
        }
        Ok(Message {
            header: self.header,
            questions,
            answers,
            authorities,
            additionals,
            edns,
        })
    }
}

/// A borrowed question.
#[derive(Clone, Debug)]
pub struct QuestionView<'a> {
    buf: &'a [u8],
    name_off: usize,
    /// Queried type.
    pub qtype: RType,
    /// Queried class.
    pub qclass: RClass,
}

impl QuestionView<'_> {
    /// Materializes the queried name (validates compression pointers).
    pub fn qname(&self) -> Result<Name, ProtoError> {
        let mut dec = Decoder::new(self.buf);
        dec.seek(self.name_off)?;
        dec.name()
    }

    /// Case-insensitive qname comparison without allocating. Malformed
    /// pointer chains compare unequal.
    pub fn qname_is(&self, name: &Name) -> bool {
        let mut dec = Decoder::new(self.buf);
        dec.seek(self.name_off).is_ok() && dec.name_is(name)
    }
}

/// A borrowed resource record: typed fixed fields, rdata as a byte range.
#[derive(Clone, Debug)]
pub struct RecordView<'a> {
    buf: &'a [u8],
    name_off: usize,
    /// Record type.
    pub rtype: RType,
    /// Record class (for OPT: the advertised UDP payload size).
    pub class: RClass,
    /// Time to live (for OPT: packed extended-rcode/version/DO).
    pub ttl: u32,
    rdata_off: usize,
    rdata_len: usize,
}

impl<'a> RecordView<'a> {
    /// Materializes the owner name (validates compression pointers).
    pub fn name(&self) -> Result<Name, ProtoError> {
        let mut dec = Decoder::new(self.buf);
        dec.seek(self.name_off)?;
        dec.name()
    }

    /// Case-insensitive owner-name comparison without allocating.
    pub fn name_is(&self, name: &Name) -> bool {
        let mut dec = Decoder::new(self.buf);
        dec.seek(self.name_off).is_ok() && dec.name_is(name)
    }

    /// The raw rdata bytes, exactly RDLENGTH long. Note that rdata containing
    /// compressed names (NS, CNAME, SOA, …) is only meaningful relative to
    /// the whole message; use [`RecordView::to_owned`] for those.
    pub fn rdata(&self) -> &'a [u8] {
        &self.buf[self.rdata_off..self.rdata_off + self.rdata_len]
    }

    /// Materializes an owned [`Record`] (same rdata parsing as the eager
    /// decoder, including the RDLENGTH-consumption check).
    pub fn to_owned(&self) -> Result<Record, ProtoError> {
        let name = self.name()?;
        let mut dec = Decoder::new(self.buf);
        dec.seek(self.rdata_off)?;
        let rdata = RData::decode(&mut dec, self.rtype, self.rdata_len)?;
        Ok(Record { name, class: self.class, ttl: self.ttl, rdata })
    }
}

/// Lazy record iterator; see [`MessageView::records`].
pub struct RecordIter<'a> {
    dec: Decoder<'a>,
    an: u16,
    ns: u16,
    ar: u16,
    failed: bool,
}

impl<'a> RecordIter<'a> {
    fn next_record(&mut self) -> Result<RecordView<'a>, ProtoError> {
        let name_off = self.dec.position();
        self.dec.skip_name()?;
        let rtype = RType::from_u16(self.dec.u16()?);
        let class = RClass::from_u16(self.dec.u16()?);
        let ttl = self.dec.u32()?;
        let rdata_len = self.dec.u16()? as usize;
        let rdata_off = self.dec.position();
        self.dec.seek(rdata_off + rdata_len)?;
        Ok(RecordView {
            buf: self.dec.data(),
            name_off,
            rtype,
            class,
            ttl,
            rdata_off,
            rdata_len,
        })
    }
}

impl<'a> Iterator for RecordIter<'a> {
    type Item = Result<(Section, RecordView<'a>), ProtoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let section = if self.an > 0 {
            self.an -= 1;
            Section::Answer
        } else if self.ns > 0 {
            self.ns -= 1;
            Section::Authority
        } else if self.ar > 0 {
            self.ar -= 1;
            Section::Additional
        } else {
            return None;
        };
        match self.next_record() {
            Ok(rv) => Some(Ok((section, rv))),
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Rcode;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn referral() -> Message {
        let q = Message::query(42, n("www.example.com"), RType::A);
        let mut resp = Message::response_to(&q, Rcode::NoError);
        for i in 0..4u8 {
            let host = n(&format!("ns{i}.example-servers.net"));
            resp.authorities.push(Record::new(n("com"), 172_800, RData::Ns(host.clone())));
            resp.additionals.push(Record::new(
                host,
                172_800,
                RData::A(Ipv4Addr::new(192, 0, 2, i)),
            ));
        }
        resp.edns = Some(Edns::default());
        resp
    }

    #[test]
    fn view_header_and_question_match_eager_decode() {
        let msg = referral();
        let wire = msg.encode();
        let view = MessageView::parse(&wire).unwrap();
        assert_eq!(*view.header(), msg.header);
        assert_eq!(view.record_counts(), (0, 4, 5)); // OPT counts in ARCOUNT
        let q = view.question().unwrap();
        assert_eq!(q.qtype, RType::A);
        assert_eq!(q.qname().unwrap(), n("www.example.com"));
        assert!(q.qname_is(&n("WWW.EXAMPLE.COM")));
        assert!(!q.qname_is(&n("www.example.org")));
    }

    #[test]
    fn view_to_owned_equals_eager_decode() {
        let msg = referral();
        let wire = msg.encode();
        let view = MessageView::parse(&wire).unwrap();
        assert_eq!(view.to_owned().unwrap(), Message::decode(&wire).unwrap());
    }

    #[test]
    fn lazy_records_walk_all_sections() {
        let msg = referral();
        let wire = msg.encode();
        let view = MessageView::parse(&wire).unwrap();
        let mut ns = 0;
        let mut glue = 0;
        let mut opt = 0;
        for item in view.records() {
            let (section, rv) = item.unwrap();
            match (section, rv.rtype) {
                (Section::Authority, RType::NS) => {
                    assert!(rv.name_is(&n("com")));
                    ns += 1;
                }
                (Section::Additional, RType::A) => {
                    assert_eq!(rv.rdata().len(), 4);
                    glue += 1;
                }
                (Section::Additional, RType::OPT) => opt += 1,
                other => panic!("unexpected {other:?}", other = other.0),
            }
        }
        assert_eq!((ns, glue, opt), (4, 4, 1));
    }

    #[test]
    fn record_view_to_owned_matches_eager_records() {
        let msg = referral();
        let wire = msg.encode();
        let view = MessageView::parse(&wire).unwrap();
        let owned: Vec<Record> = view
            .records()
            .map(|r| r.unwrap().1.to_owned().unwrap())
            .filter(|r| r.rtype() != RType::OPT)
            .collect();
        let eager = Message::decode(&wire).unwrap();
        let expected: Vec<Record> =
            eager.authorities.iter().chain(&eager.additionals).cloned().collect();
        assert_eq!(owned, expected);
    }

    #[test]
    fn lying_ancount_surfaces_from_iterator_not_parse() {
        let q = Message::query(1, n("com"), RType::NS);
        let mut wire = q.encode();
        wire[7] = 3; // ANCOUNT low byte: claim three answers that are absent
        let view = MessageView::parse(&wire).unwrap();
        let mut it = view.records();
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none(), "iterator must fuse after an error");
        assert!(view.to_owned().is_err());
    }

    #[test]
    fn truncated_question_fails_parse() {
        let q = Message::query(1, n("www.example.com"), RType::A);
        let wire = q.encode();
        assert_eq!(
            MessageView::parse(&wire[..wire.len() - 3]).unwrap_err(),
            ProtoError::Truncated
        );
    }
}
