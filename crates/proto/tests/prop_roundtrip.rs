//! Property tests: wire encode/decode round-trips for names, records and
//! whole messages, and decoder robustness on arbitrary bytes.

use proptest::prelude::*;
use rootless_proto::message::{Edns, Message, Rcode};
use rootless_proto::name::Name;
use rootless_proto::rr::{Dnskey, Ds, RData, RType, Record, Rrsig, Soa};
use rootless_proto::view::MessageView;
use rootless_proto::wire::{Decoder, Encoder};

fn label_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 1..=20)
}

fn name_strategy() -> impl Strategy<Value = Name> {
    proptest::collection::vec(label_strategy(), 0..=5)
        .prop_filter_map("name too long", |labels| Name::from_labels(labels).ok())
}

fn short_name_strategy() -> impl Strategy<Value = Name> {
    proptest::collection::vec(proptest::collection::vec(b'a'..=b'z', 1..=10), 0..=3)
        .prop_filter_map("name too long", |labels| Name::from_labels(labels).ok())
}

fn rdata_strategy() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(o.into())),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(o.into())),
        name_strategy().prop_map(RData::Ns),
        name_strategy().prop_map(RData::Cname),
        name_strategy().prop_map(RData::Ptr),
        (any::<u16>(), name_strategy()).prop_map(|(p, n)| RData::Mx(p, n)),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..=40), 1..=3)
            .prop_map(RData::Txt),
        (
            short_name_strategy(),
            short_name_strategy(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                RData::Soa(Soa { mname, rname, serial, refresh, retry, expire, minimum })
            }),
        (any::<u16>(), any::<u8>(), any::<u8>(), proptest::collection::vec(any::<u8>(), 0..=48))
            .prop_map(|(key_tag, algorithm, digest_type, digest)| {
                RData::Ds(Ds { key_tag, algorithm, digest_type, digest })
            }),
        (any::<u16>(), any::<u8>(), proptest::collection::vec(any::<u8>(), 0..=48))
            .prop_map(|(flags, algorithm, public_key)| {
                RData::Dnskey(Dnskey { flags, protocol: 3, algorithm, public_key })
            }),
        (
            short_name_strategy(),
            proptest::collection::vec(0u16..1024, 1..=8)
        )
            .prop_map(|(next, mut types)| {
                types.sort_unstable();
                types.dedup();
                RData::Nsec(next, types.into_iter().map(RType::from_u16).collect())
            }),
        (short_name_strategy(), proptest::collection::vec(any::<u8>(), 0..=48)).prop_map(
            |(signer, signature)| {
                RData::Rrsig(Rrsig {
                    type_covered: RType::NS,
                    algorithm: 250,
                    labels: signer.label_count() as u8,
                    original_ttl: 172_800,
                    expiration: 99,
                    inception: 1,
                    key_tag: 7,
                    signer,
                    signature,
                })
            }
        ),
        (proptest::collection::vec(any::<u8>(), 0..=32)).prop_map(|b| RData::Unknown(4711, b)),
    ]
}

fn record_strategy() -> impl Strategy<Value = Record> {
    (name_strategy(), any::<u32>(), rdata_strategy())
        .prop_map(|(name, ttl, rdata)| Record::new(name, ttl, rdata))
}

type MessageParts =
    (u16, Name, Vec<Record>, Vec<Record>, Vec<Record>, bool, u16, bool);

fn message_strategy() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        name_strategy(),
        proptest::collection::vec(record_strategy(), 0..6),
        proptest::collection::vec(record_strategy(), 0..4),
        proptest::collection::vec(record_strategy(), 0..4),
        any::<bool>(),
        512u16..4096,
        any::<bool>(),
    )
        .prop_map(
            |(id, qname, answers, authorities, additionals, with_edns, payload, dnssec_ok): MessageParts| {
                let mut msg = Message::query(id, qname, RType::A);
                msg.header.response = true;
                msg.header.rcode = Rcode::NoError;
                msg.answers = answers;
                msg.authorities = authorities;
                msg.additionals = additionals;
                if with_edns {
                    msg.edns = Some(Edns {
                        udp_payload_size: payload,
                        extended_rcode: 0,
                        version: 0,
                        dnssec_ok,
                    });
                }
                msg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn name_wire_roundtrip(name in name_strategy()) {
        let mut enc = Encoder::new();
        enc.name(&name);
        let buf = enc.finish();
        let mut dec = Decoder::new(&buf);
        let out = dec.name().unwrap();
        prop_assert_eq!(out, name);
        prop_assert!(dec.is_exhausted());
    }

    #[test]
    fn name_presentation_roundtrip(name in name_strategy()) {
        let text = name.to_string();
        let parsed = Name::parse(&text).unwrap();
        prop_assert_eq!(parsed, name);
    }

    #[test]
    fn canonical_cmp_is_total_order(a in name_strategy(), b in name_strategy(), c in name_strategy()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.canonical_cmp(&b), b.canonical_cmp(&a).reverse());
        // Transitivity (on this triple).
        if a.canonical_cmp(&b) != Ordering::Greater && b.canonical_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.canonical_cmp(&c), Ordering::Greater);
        }
        // Consistency with equality.
        if a.canonical_cmp(&b) == Ordering::Equal {
            prop_assert_eq!(&a, &b);
        }
    }

    #[test]
    fn record_roundtrip(record in record_strategy()) {
        let mut enc = Encoder::new();
        record.encode(&mut enc);
        let buf = enc.finish();
        let mut dec = Decoder::new(&buf);
        let out = Record::decode(&mut dec).unwrap();
        prop_assert_eq!(out, record);
        prop_assert!(dec.is_exhausted());
    }

    #[test]
    fn message_roundtrip(
        id in any::<u16>(),
        qname in name_strategy(),
        answers in proptest::collection::vec(record_strategy(), 0..6),
        authorities in proptest::collection::vec(record_strategy(), 0..4),
        additionals in proptest::collection::vec(record_strategy(), 0..4),
        with_edns in any::<bool>(),
        payload in 512u16..4096,
        dnssec_ok in any::<bool>(),
    ) {
        let mut msg = Message::query(id, qname, RType::A);
        msg.header.response = true;
        msg.header.rcode = Rcode::NoError;
        msg.answers = answers;
        msg.authorities = authorities;
        msg.additionals = additionals;
        if with_edns {
            msg.edns = Some(Edns { udp_payload_size: payload, extended_rcode: 0, version: 0, dnssec_ok });
        }
        let buf = msg.encode();
        let out = Message::decode(&buf).unwrap();
        prop_assert_eq!(out, msg);
    }

    #[test]
    fn pooled_encoder_view_roundtrip(msg in message_strategy(), other in message_strategy()) {
        // Encode `other` first so the pooled encoder carries a dirty buffer
        // and a populated compression dict into the encode under test.
        let mut enc = Encoder::new();
        other.encode_into(&mut enc);
        msg.encode_into(&mut enc);
        prop_assert_eq!(enc.wire(), msg.encode().as_slice(), "pooled reuse must be byte-identical");
        let out = MessageView::parse(enc.wire()).unwrap().to_owned().unwrap();
        prop_assert_eq!(out, msg);
    }

    #[test]
    fn compressed_and_uncompressed_decode_identically(msg in message_strategy()) {
        let compressed = msg.encode();
        let mut plain = Encoder::without_compression();
        msg.encode_into(&mut plain);
        prop_assert!(plain.wire().len() >= compressed.len());
        let a = Message::decode(&compressed).unwrap();
        let b = Message::decode(plain.wire()).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn lazy_record_walk_matches_eager_sections(msg in message_strategy()) {
        let wire = msg.encode();
        let view = MessageView::parse(&wire).unwrap();
        let mut walked = 0usize;
        for item in view.records() {
            let (_, rv) = item.unwrap();
            rv.to_owned().unwrap();
            walked += 1;
        }
        prop_assert_eq!(
            walked,
            msg.answers.len() + msg.authorities.len() + msg.additionals.len()
                + usize::from(msg.edns.is_some())
        );
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Must return Ok or Err, never panic or loop.
        let _ = Message::decode(&bytes);
        // The borrowed tier must be just as robust, including a full lazy
        // record walk over whatever structure parse() accepted.
        if let Ok(view) = MessageView::parse(&bytes) {
            for item in view.records() {
                let _ = item.map(|(_, rv)| rv.to_owned());
            }
            let _ = view.to_owned();
        }
    }

    #[test]
    fn decoder_never_panics_on_mutated_valid_message(
        qname in name_strategy(),
        record in record_strategy(),
        flip_at in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let mut msg = Message::query(1, qname, RType::A);
        msg.header.response = true;
        msg.answers.push(record);
        let mut buf = msg.encode();
        let idx = flip_at.index(buf.len());
        buf[idx] ^= 1 << flip_bit;
        let _ = Message::decode(&buf);
    }
}
