//! Steady-state allocation audit: after warm-up, the pooled encode path and
//! the borrowed view-scan path must not touch the heap at all.
//!
//! A counting global allocator wraps the system allocator. The counter is
//! **thread-local**: the claim under test is "this code path performs no
//! allocations", and a process-global counter also picks up the libtest
//! harness thread (timers, output capture), which made the zero-allocation
//! assertions flake under load.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::net::Ipv4Addr;

use rootless_proto::message::{Edns, Message, Rcode};
use rootless_proto::name::Name;
use rootless_proto::rr::{RData, RType, Record};
use rootless_proto::view::{MessageView, Section};
use rootless_proto::wire::Encoder;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn count_one() {
    // try_with: TLS may be unavailable during thread teardown; those
    // allocations belong to no measured window anyway.
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

fn referral() -> Message {
    let q = Message::query(42, Name::parse("www.example.com").unwrap(), RType::A);
    let mut resp = Message::response_to(&q, Rcode::NoError);
    resp.edns = Some(Edns::default());
    for i in 0..6 {
        let host = Name::parse(&format!("{}.gtld-servers.net", (b'a' + i) as char)).unwrap();
        resp.authorities
            .push(Record::new(Name::parse("com").unwrap(), 172_800, RData::Ns(host.clone())));
        resp.additionals
            .push(Record::new(host, 172_800, RData::A(Ipv4Addr::new(192, 5, 6, 30 + i))));
    }
    resp
}

#[test]
fn steady_state_encode_and_scan_allocate_nothing() {
    let msg = referral();
    let qname = Name::parse("www.example.com").unwrap();
    let mut enc = Encoder::new();

    // Warm up: let the output buffer and the compression dict reach their
    // steady-state capacity.
    for _ in 0..4 {
        msg.encode_into(&mut enc);
    }
    let wire = enc.wire().to_vec();

    // Pooled encode: zero heap traffic per message.
    let before = allocs();
    for _ in 0..100 {
        msg.encode_into(&mut enc);
        assert!(!enc.wire().is_empty());
    }
    assert_eq!(allocs() - before, 0, "pooled encode must not allocate");

    // Borrowed parse + full record scan (the resolver's referral fast path):
    // zero heap traffic as well — nothing is materialized.
    let before = allocs();
    let mut ns = 0usize;
    for _ in 0..100 {
        let view = MessageView::parse(&wire).unwrap();
        assert!(view.header().response);
        assert!(view.question().unwrap().qname_is(&qname));
        for item in view.records() {
            let (section, rv) = item.unwrap();
            if section == Section::Authority && rv.rtype == RType::NS {
                ns += 1;
            }
        }
    }
    assert_eq!(allocs() - before, 0, "view scan must not allocate");
    assert_eq!(ns, 600);
}
