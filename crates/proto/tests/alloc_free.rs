//! Steady-state allocation audit: after warm-up, the pooled encode path and
//! the borrowed view-scan path must not touch the heap at all.
//!
//! A counting global allocator wraps the system allocator; the single test
//! below (one `#[test]` fn, so no parallel-test noise) measures allocation
//! counts across hot-loop iterations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

use rootless_proto::message::{Edns, Message, Rcode};
use rootless_proto::name::Name;
use rootless_proto::rr::{RData, RType, Record};
use rootless_proto::view::{MessageView, Section};
use rootless_proto::wire::Encoder;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn referral() -> Message {
    let q = Message::query(42, Name::parse("www.example.com").unwrap(), RType::A);
    let mut resp = Message::response_to(&q, Rcode::NoError);
    resp.edns = Some(Edns::default());
    for i in 0..6 {
        let host = Name::parse(&format!("{}.gtld-servers.net", (b'a' + i) as char)).unwrap();
        resp.authorities
            .push(Record::new(Name::parse("com").unwrap(), 172_800, RData::Ns(host.clone())));
        resp.additionals
            .push(Record::new(host, 172_800, RData::A(Ipv4Addr::new(192, 5, 6, 30 + i))));
    }
    resp
}

#[test]
fn steady_state_encode_and_scan_allocate_nothing() {
    let msg = referral();
    let qname = Name::parse("www.example.com").unwrap();
    let mut enc = Encoder::new();

    // Warm up: let the output buffer and the compression dict reach their
    // steady-state capacity.
    for _ in 0..4 {
        msg.encode_into(&mut enc);
    }
    let wire = enc.wire().to_vec();

    // Pooled encode: zero heap traffic per message.
    let before = allocs();
    for _ in 0..100 {
        msg.encode_into(&mut enc);
        assert!(!enc.wire().is_empty());
    }
    assert_eq!(allocs() - before, 0, "pooled encode must not allocate");

    // Borrowed parse + full record scan (the resolver's referral fast path):
    // zero heap traffic as well — nothing is materialized.
    let before = allocs();
    let mut ns = 0usize;
    for _ in 0..100 {
        let view = MessageView::parse(&wire).unwrap();
        assert!(view.header().response);
        assert!(view.question().unwrap().qname_is(&qname));
        for item in view.records() {
            let (section, rv) = item.unwrap();
            if section == Section::Authority && rv.rtype == RType::NS {
                ns += 1;
            }
        }
    }
    assert_eq!(allocs() - before, 0, "view scan must not allocate");
    assert_eq!(ns, 600);
}
