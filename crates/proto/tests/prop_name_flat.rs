//! Observational equivalence for the flat `Name` representation.
//!
//! `Name` stores one contiguous length-prefixed buffer with derived names
//! sharing the allocation; these properties pin its observable behaviour to
//! a deliberately naive reference model (`Vec<Vec<u8>>` of labels) so the
//! layout can never drift from the semantics: parse→display round-trips,
//! equality/hash are case-fold invariant, `canonical_cmp` matches the
//! RFC 4034 §6.1 right-to-left label comparison, suffix operations agree
//! with list slicing, and RFC 1035 size limits still reject.

use std::cmp::Ordering;
use std::hash::{BuildHasher, Hash, Hasher, RandomState};

use proptest::prelude::*;
use rootless_proto::name::Name;

/// The reference model: a plain list of labels, most-specific first.
#[derive(Clone, Debug)]
struct RefName(Vec<Vec<u8>>);

impl RefName {
    fn to_name(&self) -> Name {
        Name::from_labels(self.0.iter().cloned()).unwrap()
    }

    /// RFC 4034 §6.1 canonical ordering: compare label sequences
    /// right-to-left, bytewise after ASCII lowercasing, shorter label runs
    /// ordering first.
    fn canonical_cmp(&self, other: &RefName) -> Ordering {
        let a: Vec<Vec<u8>> =
            self.0.iter().rev().map(|l| l.to_ascii_lowercase()).collect();
        let b: Vec<Vec<u8>> =
            other.0.iter().rev().map(|l| l.to_ascii_lowercase()).collect();
        a.cmp(&b)
    }
}

fn label_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 1..=24)
}

fn ref_name_strategy() -> impl Strategy<Value = RefName> {
    proptest::collection::vec(label_strategy(), 0..=6)
        .prop_filter_map("name too long", |labels| {
            Name::from_labels(labels.iter().cloned()).ok().map(|_| RefName(labels))
        })
}

/// Flips the case of ASCII letters in `name` wherever `mask` has a 1 bit
/// (cycling over 64 positions) — a random-but-reproducible case mangling.
fn mangle_case(name: &RefName, mask: u64) -> RefName {
    let mut pos = 0usize;
    RefName(
        name.0
            .iter()
            .map(|label| {
                label
                    .iter()
                    .map(|&b| {
                        let flip = mask >> (pos % 64) & 1 == 1;
                        pos += 1;
                        if flip && b.is_ascii_alphabetic() {
                            b ^ 0x20
                        } else {
                            b
                        }
                    })
                    .collect()
            })
            .collect(),
    )
}

fn sip_hash(name: &Name) -> u64 {
    // One fixed-per-process RandomState: equal names must collide exactly.
    use std::sync::OnceLock;
    static STATE: OnceLock<RandomState> = OnceLock::new();
    let mut h = STATE.get_or_init(RandomState::new).build_hasher();
    name.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn display_parse_roundtrip_matches_model(r in ref_name_strategy()) {
        let name = r.to_name();
        let reparsed = Name::parse(&name.to_string()).unwrap();
        prop_assert_eq!(&reparsed, &name);
        // Labels observed through the iterator equal the model's labels.
        let seen: Vec<&[u8]> = name.labels().collect();
        let want: Vec<&[u8]> = r.0.iter().map(|l| l.as_slice()).collect();
        prop_assert_eq!(seen, want);
        prop_assert_eq!(name.label_count(), r.0.len());
    }

    #[test]
    fn eq_and_hash_are_case_fold_invariant(r in ref_name_strategy(), mask in any::<u64>()) {
        let a = r.to_name();
        let b = mangle_case(&r, mask).to_name();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.folded_hash(), b.folded_hash());
        prop_assert_eq!(sip_hash(&a), sip_hash(&b));
        prop_assert_eq!(a.canonical_cmp(&b), Ordering::Equal);
    }

    #[test]
    fn distinct_names_compare_unequal(a in ref_name_strategy(), b in ref_name_strategy()) {
        let la: Vec<Vec<u8>> = a.0.iter().map(|l| l.to_ascii_lowercase()).collect();
        let lb: Vec<Vec<u8>> = b.0.iter().map(|l| l.to_ascii_lowercase()).collect();
        prop_assert_eq!(a.to_name() == b.to_name(), la == lb);
    }

    #[test]
    fn canonical_cmp_matches_reference(a in ref_name_strategy(), b in ref_name_strategy(), mask in any::<u64>()) {
        // Case mangling one side must not affect the ordering.
        let mangled = mangle_case(&a, mask).to_name();
        prop_assert_eq!(mangled.canonical_cmp(&b.to_name()), a.canonical_cmp(&b));
    }

    #[test]
    fn suffix_ops_match_list_slicing(r in ref_name_strategy(), pick in any::<prop::sample::Index>()) {
        let name = r.to_name();
        let n = pick.index(r.0.len() + 1);
        let suffix = name.suffix(n);
        prop_assert_eq!(suffix, RefName(r.0[r.0.len() - n..].to_vec()).to_name());
        match name.parent() {
            Some(parent) => prop_assert_eq!(parent, RefName(r.0[1..].to_vec()).to_name()),
            None => prop_assert!(r.0.is_empty()),
        }
        match name.tld() {
            Some(tld) => {
                prop_assert_eq!(tld, RefName(r.0[r.0.len() - 1..].to_vec()).to_name());
            }
            None => prop_assert!(r.0.is_empty()),
        }
        // Derived names behave exactly like freshly built ones.
        let fresh = RefName(r.0[r.0.len() - n..].to_vec()).to_name();
        let derived = name.suffix(n);
        prop_assert_eq!(derived.folded_hash(), fresh.folded_hash());
        prop_assert_eq!(sip_hash(&derived), sip_hash(&fresh));
        prop_assert_eq!(derived.canonical_wire(), fresh.canonical_wire());
        prop_assert_eq!(derived.to_string(), fresh.to_string());
    }

    #[test]
    fn child_then_parent_is_identity(r in ref_name_strategy(), label in label_strategy()) {
        let name = r.to_name();
        match name.child(&label) {
            Ok(child) => {
                prop_assert_eq!(child.parent().unwrap(), name);
                prop_assert_eq!(child.first_label().unwrap(), label.as_slice());
            }
            Err(_) => {
                // Only a size overflow may refuse a 1..=24-byte label.
                prop_assert!(name.wire_len() + label.len() + 1 > 255);
            }
        }
    }

    #[test]
    fn rfc1035_limits_reject(overlong in 64usize..=96, labels in 2usize..=3) {
        // A label over 63 bytes is invalid however the name is built.
        let big = vec![b'a'; overlong];
        prop_assert!(Name::from_labels([big.clone()]).is_err());
        prop_assert!(Name::root().child(&big).is_err());
        prop_assert!(Name::parse(&"a".repeat(overlong)).is_err());
        // 2–3 maximal labels still fit in 255 octets of wire length…
        let maxed = vec![vec![b'x'; 63]; labels];
        let base = Name::from_labels(maxed.clone()).unwrap();
        prop_assert_eq!(base.wire_len(), labels * 64 + 1);
        let parsed = Name::parse(&vec!["x".repeat(63); 5].join(".")) ;
        prop_assert!(parsed.is_err(), "5×63-byte labels exceed 255 octets");
    }
}
