//! Decode robustness matrix: EDNS OPT edge cases, compression-pointer
//! limits, and truncation at every byte boundary. Malformed input must
//! come back as a `ProtoError` — never a panic, never a hang.

use std::net::Ipv4Addr;

use rootless_proto::message::{Edns, Message};
use rootless_proto::name::Name;
use rootless_proto::rr::{RData, RType, Record};
use rootless_proto::wire::Decoder;
use rootless_proto::{MessageView, ProtoError};

fn n(s: &str) -> Name {
    Name::parse(s).unwrap()
}

/// Appends a hand-rolled A record (`www. A 1.2.3.4`) to a wire buffer.
fn push_a_record(buf: &mut Vec<u8>) {
    buf.extend_from_slice(b"\x03www\x00"); // owner: www.
    buf.extend_from_slice(&1u16.to_be_bytes()); // type A
    buf.extend_from_slice(&1u16.to_be_bytes()); // class IN
    buf.extend_from_slice(&60u32.to_be_bytes()); // ttl
    buf.extend_from_slice(&4u16.to_be_bytes()); // rdlen
    buf.extend_from_slice(&[1, 2, 3, 4]);
}

/// A record that follows the OPT pseudo-record must survive decoding: the
/// OPT's rdata is consumed by its exact RDLENGTH, so the decoder lands on
/// the next record boundary.
#[test]
fn record_after_opt_is_preserved() {
    let mut q = Message::query(7, n("example"), RType::A);
    q.edns = Some(Edns::default());
    let mut buf = q.encode();
    // The encoder writes OPT last; append a real A record after it and
    // bump ARCOUNT (bytes 10..12).
    push_a_record(&mut buf);
    buf[11] += 1;
    let msg = Message::decode(&buf).unwrap();
    assert!(msg.edns.is_some(), "OPT must still be recognized");
    assert_eq!(msg.additionals.len(), 1);
    assert_eq!(msg.additionals[0].name, n("www"));
    assert_eq!(msg.additionals[0].rdata, RData::A(Ipv4Addr::new(1, 2, 3, 4)));
}

/// OPT with a non-empty rdata (EDNS options present): exactly RDLENGTH
/// bytes belong to the OPT, and the record after it still parses.
#[test]
fn opt_with_options_rdata_consumed_exactly() {
    let mut buf = Vec::new();
    buf.extend_from_slice(&1u16.to_be_bytes()); // id
    buf.extend_from_slice(&0x8000u16.to_be_bytes()); // QR=1
    buf.extend_from_slice(&0u16.to_be_bytes()); // qdcount
    buf.extend_from_slice(&0u16.to_be_bytes()); // ancount
    buf.extend_from_slice(&0u16.to_be_bytes()); // nscount
    buf.extend_from_slice(&2u16.to_be_bytes()); // arcount: OPT + A
    // OPT: root owner, type 41, class = payload size, ttl 0, 8-byte rdata
    // holding one option (code 10 "cookie", length 4, 4 bytes of data).
    buf.push(0);
    buf.extend_from_slice(&41u16.to_be_bytes());
    buf.extend_from_slice(&1232u16.to_be_bytes());
    buf.extend_from_slice(&0u32.to_be_bytes());
    buf.extend_from_slice(&8u16.to_be_bytes());
    buf.extend_from_slice(&10u16.to_be_bytes());
    buf.extend_from_slice(&4u16.to_be_bytes());
    buf.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
    push_a_record(&mut buf);

    let msg = Message::decode(&buf).unwrap();
    assert_eq!(msg.edns.unwrap().udp_payload_size, 1232);
    assert_eq!(msg.additionals.len(), 1);
    assert_eq!(msg.additionals[0].rtype(), RType::A);
}

/// Builds a buffer whose name at the returned offset is a chain of `chain`
/// pointers, each strictly backward, ending at a root terminator.
fn pointer_chain(chain: usize) -> (Vec<u8>, usize) {
    let mut buf = vec![0u8]; // offset 0: root name
    let mut prev = 0usize;
    for _ in 0..chain {
        let here = buf.len();
        buf.extend_from_slice(&(0xc000u16 | prev as u16).to_be_bytes());
        prev = here;
    }
    (buf, prev)
}

#[test]
fn pointer_chain_within_jump_limit_decodes() {
    let (buf, start) = pointer_chain(64);
    let mut dec = Decoder::new(&buf);
    dec.seek(start).unwrap();
    assert_eq!(dec.name().unwrap(), Name::root());
}

#[test]
fn pointer_chain_over_jump_limit_rejected() {
    let (buf, start) = pointer_chain(65);
    let mut dec = Decoder::new(&buf);
    dec.seek(start).unwrap();
    assert_eq!(dec.name().unwrap_err(), ProtoError::BadPointer);
}

/// A question name that points at itself must fail at materialization —
/// the lazy parse skips it structurally, but the full decode rejects it.
#[test]
fn self_referential_question_rejected_at_decode() {
    let mut buf = Vec::new();
    buf.extend_from_slice(&9u16.to_be_bytes()); // id
    buf.extend_from_slice(&0u16.to_be_bytes()); // flags
    buf.extend_from_slice(&1u16.to_be_bytes()); // qdcount
    buf.extend_from_slice(&[0, 0, 0, 0, 0, 0]); // an/ns/ar counts
    buf.extend_from_slice(&0xc00cu16.to_be_bytes()); // qname: pointer to itself
    buf.extend_from_slice(&1u16.to_be_bytes()); // qtype
    buf.extend_from_slice(&1u16.to_be_bytes()); // qclass
    // Structurally a pointer is a complete name, so the borrowed parse
    // accepts the layout...
    let view = MessageView::parse(&buf).unwrap();
    // ...but chasing the pointer fails, both from the view and end to end.
    assert_eq!(view.question().unwrap().qname().unwrap_err(), ProtoError::BadPointer);
    assert_eq!(Message::decode(&buf).unwrap_err(), ProtoError::BadPointer);
}

/// A forward pointer (target beyond the name being decoded) is rejected.
#[test]
fn forward_pointer_rejected_at_decode() {
    let mut buf = Vec::new();
    buf.extend_from_slice(&9u16.to_be_bytes());
    buf.extend_from_slice(&0u16.to_be_bytes());
    buf.extend_from_slice(&1u16.to_be_bytes());
    buf.extend_from_slice(&[0, 0, 0, 0, 0, 0]);
    buf.extend_from_slice(&0xc020u16.to_be_bytes()); // qname: points forward
    buf.extend_from_slice(&1u16.to_be_bytes());
    buf.extend_from_slice(&1u16.to_be_bytes());
    assert_eq!(Message::decode(&buf).unwrap_err(), ProtoError::BadPointer);
}

/// Every strict prefix of a valid message must fail to decode cleanly:
/// section counts promise records the prefix cannot deliver.
#[test]
fn every_truncation_point_errors_never_panics() {
    let mut resp = Message::query(3, n("www.example.com"), RType::A);
    resp.header.response = true;
    resp.answers.push(Record::new(
        n("www.example.com"),
        300,
        RData::A(Ipv4Addr::new(192, 0, 2, 1)),
    ));
    resp.authorities.push(Record::new(n("example.com"), 172_800, RData::Ns(n("ns1.example.com"))));
    resp.additionals.push(Record::new(
        n("ns1.example.com"),
        172_800,
        RData::A(Ipv4Addr::new(192, 0, 2, 53)),
    ));
    resp.edns = Some(Edns::default());
    let wire = resp.encode();
    assert_eq!(Message::decode(&wire).unwrap(), resp);
    for len in 0..wire.len() {
        let prefix = &wire[..len];
        assert!(Message::decode(prefix).is_err(), "prefix of {len} bytes must not decode");
        // The borrowed tier may accept a structurally-complete prefix;
        // walking its records must then surface the error, not panic.
        if let Ok(view) = MessageView::parse(prefix) {
            assert!(
                view.records().any(|r| r.is_err()) || view.to_owned().is_err(),
                "prefix of {len} bytes must fail somewhere"
            );
        }
    }
}

/// An RDLENGTH that overruns the datagram is truncation, not a panic.
#[test]
fn overlong_rdlen_rejected() {
    let mut resp = Message::query(3, n("a.example"), RType::A);
    resp.header.response = true;
    resp.answers.push(Record::new(n("a.example"), 60, RData::A(Ipv4Addr::new(10, 0, 0, 1))));
    let mut wire = resp.encode();
    // The A rdata (4 bytes) sits at the very end; its RDLENGTH is the
    // 2 bytes before it. Claim far more than remains.
    let rdlen_at = wire.len() - 6;
    wire[rdlen_at] = 0x7f;
    assert_eq!(Message::decode(&wire), Err(ProtoError::Truncated));
}

/// A message larger than the 16 KiB pointer-target window still round-trips:
/// suffixes first seen past offset 0x3fff are written inline (they can never
/// be pointed at), while pointers to early offsets keep working throughout.
#[test]
fn giant_message_roundtrips_past_pointer_window() {
    let mut resp = Message::query(1, n("example.com"), RType::TXT);
    resp.header.response = true;
    for i in 0..400 {
        resp.answers.push(Record::new(
            n(&format!("host{i}.zone{}.example.com", i % 7)),
            300,
            RData::Txt(vec![vec![b'x'; 40]]),
        ));
    }
    let wire = resp.encode();
    assert!(wire.len() > 0x4000, "need to cross the pointer window, got {}", wire.len());
    assert_eq!(Message::decode(&wire).unwrap(), resp);
}
