//! Differential property gate for `dnssec::incremental` (fixed-point style,
//! like `prop_zone`): over random churn sequences drawn from `zone::churn`,
//! replay each day's diff through the cached [`VerifiedZone`] and assert the
//! incremental path is indistinguishable from re-validating from scratch —
//! same accept verdict, byte-identical cached state (owner map, span links,
//! signature windows, digest-tree leaves, via `state_digest`), identical
//! [`denial_for`] answers (also pinned to `nsec::denial_for` ground truth) —
//! while doing sublinear work.
//!
//! [`VerifiedZone`]: rootless_dnssec::incremental::VerifiedZone
//! [`denial_for`]: rootless_dnssec::incremental::VerifiedZone::denial_for

use proptest::prelude::*;
use rootless_dnssec::incremental::{Publisher, VerifiedZone};
use rootless_dnssec::nsec;
use rootless_dnssec::ZoneKey;
use rootless_proto::name::Name;
use rootless_util::time::Date;
use rootless_zone::churn::{ChurnConfig, Timeline};
use rootless_zone::diff::ZoneDiff;
use rootless_zone::rootzone::RootZoneConfig;

fn timeline(tlds: usize, days: u64, seed: u64) -> Timeline {
    // Churn boosted an order of magnitude over the paper's rates so a short
    // horizon still exercises adds, deletes, and migrations together.
    let churn = ChurnConfig {
        add_rate_per_day: 0.4,
        delete_rate_per_day: 0.4,
        migration_rate_per_day: 0.4,
        migration_step_days: 2,
        seed: seed ^ 0x1C4E,
        ..ChurnConfig::default()
    };
    Timeline::generate(RootZoneConfig::small(tlds), churn, Date::new(2019, 4, 1), days)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prop_incremental(tlds in 30usize..90, days in 3u64..7, seed in 0u64..1000) {
        let t = timeline(tlds, days, seed);
        let key = ZoneKey::generate(Name::root(), true, seed ^ 0xD5);
        let publisher = Publisher::new(key.clone(), 0, ((days + 10) * 86_400) as u32);

        let published: Vec<_> = (0..days).map(|d| publisher.publish(&t.snapshot(d))).collect();
        let now_on = |day: u64| (day * 86_400 + 3_600) as u32;

        let mut vz = VerifiedZone::full_verify(&published[0], &key, now_on(0))
            .expect("day 0 verifies from scratch");
        let full_day0_sets = vz.stats.sets_verified;

        for day in 1..days {
            let now = now_on(day);
            let next = &published[day as usize];
            let diff = ZoneDiff::compute(vz.zone(), next);
            let stats = vz.apply_diff(&diff, now).expect("honest daily diff verifies");

            // Same verdict and same zone as a from-scratch pass ...
            let fresh = VerifiedZone::full_verify(next, &key, now)
                .expect("published zone verifies from scratch");
            prop_assert_eq!(vz.zone(), next);
            // ... and byte-identical cached state: owners, span links,
            // per-owner signature windows, digest-tree leaves.
            prop_assert_eq!(vz.state_digest(), fresh.state_digest(), "day {} state", day);

            // Per-delegation state agrees name by name.
            for tld in next.tlds() {
                prop_assert_eq!(vz.owner_state(&tld), fresh.owner_state(&tld));
            }

            // Denial answers: incremental == full == the nsec module.
            for i in 0..12 {
                let q = Name::parse(&format!("hole-{seed}-{i}-no-such-tld")).unwrap();
                let inc = vz.denial_for(&q);
                prop_assert_eq!(&inc, &fresh.denial_for(&q));
                prop_assert_eq!(&inc, &nsec::denial_for(next, &q));
            }
            let exists = next.tlds()[0].clone();
            prop_assert_eq!(vz.denial_for(&exists), None);

            // Sublinear: a churn day re-verifies far fewer sets than day 0's
            // full pass (and than today's fresh pass).
            prop_assert!(
                stats.sets_verified * 2 < full_day0_sets,
                "day {}: incremental {} vs full {}",
                day, stats.sets_verified, full_day0_sets
            );
            prop_assert!(stats.sets_verified * 2 < fresh.stats.sets_verified);
        }
    }
}
