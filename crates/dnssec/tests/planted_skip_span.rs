//! Proof the differential gates are not vacuous (the PR 8 `plant-stale-bug`
//! pattern): the `plant-skip-span` feature deletes exactly one check from
//! the incremental path — the adjacent-NSEC-span re-check after an owner
//! vanishes — and this suite shows that buggy build *accepting* a silent
//! delegation deletion that from-scratch verification rejects. A harness
//! that compares the two paths therefore detects the plant; tier1 runs this
//! build by name so the gate can never rot into tautology.

#![cfg(feature = "plant-skip-span")]

use rootless_dnssec::incremental::{Publisher, VerifiedZone};
use rootless_dnssec::ZoneKey;
use rootless_proto::name::Name;
use rootless_util::time::Date;
use rootless_zone::diff::ZoneDiff;
use rootless_zone::history;

fn key() -> ZoneKey {
    ZoneKey::generate(Name::root(), true, 0x2009_2019)
}

fn now_on(day: u64) -> u32 {
    (day * 86_400 + 3_600) as u32
}

/// Same attack as `incremental_history::malicious_removal_is_rejected_incrementally`,
/// same seed: an honest daily diff with one whole delegation's removals
/// appended. The planted build skips the predecessor-span re-check, so the
/// incremental verdict flips to *accept* — while full verification still
/// rejects the doctored zone. The disagreement IS the detection.
#[test]
fn planted_span_skip_is_caught_by_differential_harness() {
    let t = history::churn_timeline(Date::new(2019, 4, 1), 2, 5);
    let k = key();
    let p = Publisher::new(k.clone(), 0, 12 * 86_400);
    let z0 = p.publish(&t.snapshot(0));
    let z1 = p.publish(&t.snapshot(1));
    let mut diff = ZoneDiff::compute(&z0, &z1);
    // The plant only skips span checks at predecessors of *vanished* owners;
    // a predecessor the honest diff touched anyway gets checked regardless.
    // Pick a victim whose predecessor is untouched, so the skipped check is
    // the ONLY thing standing between the deletion and acceptance.
    let mut owner_list: Vec<Name> = Vec::new();
    for set in z1.rrsets() {
        if owner_list.last() != Some(&set.name) {
            owner_list.push(set.name.clone());
        }
    }
    let touched: std::collections::BTreeSet<Name> = diff
        .added
        .iter()
        .chain(&diff.changed)
        .map(|s| s.name.clone())
        .chain(diff.removed.iter().map(|(n, _)| n.clone()))
        .collect();
    let victim = z1
        .tlds()
        .into_iter()
        .find(|tld| {
            if touched.iter().any(|n| n.is_within(tld)) {
                return false;
            }
            let idx = owner_list.iter().position(|n| n == tld).expect("tld is an owner");
            idx > 0 && !touched.contains(&owner_list[idx - 1])
        })
        .expect("some TLD with an untouched predecessor");
    for set in z1.rrsets() {
        if set.name.is_within(&victim) {
            diff.removed.push((set.name.clone(), set.rtype));
        }
    }

    let mut vz = VerifiedZone::full_verify(&z0, &k, now_on(0)).unwrap();
    // The planted bug: the buggy incremental path swallows the deletion.
    vz.apply_diff(&diff, now_on(1))
        .expect("the planted build must wrongly ACCEPT the silent deletion");
    assert!(!vz.zone().name_exists(&victim), "the victim really was deleted");

    // The from-scratch path still rejects the same zone, so a differential
    // comparison flags the divergence.
    assert!(
        VerifiedZone::full_verify(vz.zone(), &k, now_on(1)).is_err(),
        "full verification must still reject — otherwise the plant is undetectable"
    );
}

/// The plant only weakens removal handling: an honest churn day must still
/// verify identically to the from-scratch path even on the buggy build, so
/// the planted feature cannot mask itself behind spurious failures.
#[test]
fn planted_build_still_accepts_honest_days() {
    let t = history::churn_timeline(Date::new(2019, 4, 1), 4, 5);
    let k = key();
    let p = Publisher::new(k.clone(), 0, 14 * 86_400);
    let mut vz = VerifiedZone::full_verify(&p.publish(&t.snapshot(0)), &k, now_on(0)).unwrap();
    for day in 1..4 {
        let next = p.publish(&t.snapshot(day));
        let diff = ZoneDiff::compute(vz.zone(), &next);
        vz.apply_diff(&diff, now_on(day)).expect("honest day verifies on the planted build");
        assert_eq!(vz.zone(), &next);
    }
}
