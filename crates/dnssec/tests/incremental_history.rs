//! Full-vs-incremental verdict equality over sampled windows of the
//! generated 2009→2019 root-zone history (`zone::history::churn_timeline`),
//! plus the adversarial cases the incremental shortcut must not weaken:
//! silent whole-delegation deletion and fabricated removals are rejected on
//! the *incremental* path, where no signature covers the missing data and
//! only the adjacent NSEC span gives the attack away.

use rootless_dnssec::incremental::{Publisher, VerifiedZone, VerifyError};
use rootless_dnssec::ZoneKey;
use rootless_proto::name::Name;
use rootless_proto::rr::RType;
use rootless_util::time::Date;
use rootless_zone::diff::ZoneDiff;
use rootless_zone::history;
use rootless_zone::zone::Zone;

fn key() -> ZoneKey {
    ZoneKey::generate(Name::root(), true, 0x2009_2019)
}

fn publisher(horizon_days: u64) -> Publisher {
    Publisher::new(key(), 0, ((horizon_days + 10) * 86_400) as u32)
}

fn now_on(day: u64) -> u32 {
    (day * 86_400 + 3_600) as u32
}

/// Replays `days` of history starting at `start` through both verification
/// paths, asserting verdict + state + zone equality every day, and returns
/// (incremental sets verified, full sets verified) summed over the window.
fn replay_window(start: Date, days: u64, seed: u64) -> (u64, u64) {
    let t = history::churn_timeline(start, days, seed);
    let k = key();
    let p = publisher(days);
    let mut vz =
        VerifiedZone::full_verify(&p.publish(&t.snapshot(0)), &k, now_on(0)).unwrap_or_else(|e| {
            panic!("day 0 of {start} must verify: {e}");
        });
    let (mut inc_sets, mut full_sets) = (0u64, 0u64);
    for day in 1..days {
        let next = p.publish(&t.snapshot(day));
        let diff = ZoneDiff::compute(vz.zone(), &next);
        let stats = vz
            .apply_diff(&diff, now_on(day))
            .unwrap_or_else(|e| panic!("day {day} of {start} must verify incrementally: {e}"));
        let fresh = VerifiedZone::full_verify(&next, &k, now_on(day))
            .unwrap_or_else(|e| panic!("day {day} of {start} must verify from scratch: {e}"));
        assert_eq!(vz.zone(), &next, "day {day} of {start}: zone mismatch");
        assert_eq!(
            vz.state_digest(),
            fresh.state_digest(),
            "day {day} of {start}: cached state diverged from scratch"
        );
        inc_sets += stats.sets_verified;
        full_sets += fresh.stats.sets_verified;
    }
    (inc_sets, full_sets)
}

/// The tier1 sweep: a sampled month (28 days) from each era of the Fig. 1
/// history — pre-gTLD 2009, ramp 2014, plateau 2019 — with verdicts, state,
/// and zones equal on every day, and incremental work sublinear overall.
#[test]
fn sampled_history_verdicts_match_full() {
    for (start, seed) in [
        (Date::new(2009, 5, 1), 1u64),
        (Date::new(2014, 6, 1), 2),
        (Date::new(2019, 4, 1), 3),
    ] {
        let days = if start.year == 2009 { 28 } else { 7 };
        let (inc, full) = replay_window(start, days, seed);
        assert!(
            inc * 5 < full,
            "{start}: incremental {inc} sets vs full {full} — not sublinear"
        );
    }
}

/// An empty diff (serials aside, nothing changed) is accepted with zero
/// re-verification work.
#[test]
fn empty_diff_verifies_for_free() {
    let t = history::churn_timeline(Date::new(2019, 4, 1), 2, 9);
    let k = key();
    let p = publisher(2);
    let z0 = p.publish(&t.snapshot(0));
    let mut vz = VerifiedZone::full_verify(&z0, &k, now_on(0)).unwrap();
    let diff = ZoneDiff::compute(&z0, &z0);
    assert!(diff.is_empty());
    let stats = vz.apply_diff(&diff, now_on(1)).unwrap();
    assert_eq!(stats.sets_verified, 0);
    assert_eq!(stats.spans_checked, 0);
    assert_eq!(stats.owners_touched, 0);
    assert_eq!(vz.zone(), &z0);
}

/// Appends removal entries for one whole delegation (the TLD and everything
/// under it) to an otherwise-honest diff — the signature-less deletion attack
/// IXFR makes possible.
fn inject_delegation_removal(diff: &mut ZoneDiff, zone: &Zone, victim: &Name) {
    for set in zone.rrsets() {
        if set.name.is_within(victim) {
            diff.removed.push((set.name.clone(), set.rtype));
        }
    }
}

/// Picks a TLD untouched by the honest diff, so the only dishonest entries
/// are the injected removals.
fn untouched_tld(zone: &Zone, diff: &ZoneDiff) -> Name {
    zone.tlds()
        .into_iter()
        .find(|tld| {
            let in_added = diff.added.iter().chain(&diff.changed).any(|s| s.name.is_within(tld));
            let in_removed = diff.removed.iter().any(|(n, _)| n.is_within(tld));
            !in_added && !in_removed
        })
        .expect("some TLD untouched by a daily diff")
}

/// A man-in-the-middle deletes a whole delegation from an honest daily diff.
/// No RRset it *adds* is unsigned — the attack is pure removal — so the only
/// tripwire on the incremental path is the predecessor's NSEC span, which
/// still names the victim as its successor.
#[test]
fn malicious_removal_is_rejected_incrementally() {
    let t = history::churn_timeline(Date::new(2019, 4, 1), 2, 5);
    let k = key();
    let p = publisher(2);
    let z0 = p.publish(&t.snapshot(0));
    let z1 = p.publish(&t.snapshot(1));
    let mut diff = ZoneDiff::compute(&z0, &z1);
    let victim = untouched_tld(&z1, &diff);
    inject_delegation_removal(&mut diff, &z1, &victim);

    let mut vz = VerifiedZone::full_verify(&z0, &k, now_on(0)).unwrap();
    match vz.apply_diff(&diff, now_on(1)) {
        Err(VerifyError::BadNsecSpan { found, .. }) => {
            assert_eq!(found, victim, "the stale span should still name the victim");
        }
        other => panic!("silent deletion must break an adjacent span, got {other:?}"),
    }

    // Ground truth: the from-scratch path rejects the same doctored zone
    // (ZONEMD no longer matches and the NSEC chain is broken).
    let mut doctored = z0.clone();
    diff.apply(&mut doctored).unwrap();
    assert!(VerifiedZone::full_verify(&doctored, &k, now_on(1)).is_err());
    assert!(!doctored.name_exists(&victim));
}

/// Removing a single RRset (a TLD's DS) rather than the whole delegation is
/// caught by the owner's own bitmap re-check: the NSEC at the owner still
/// lists the type the diff claims is gone.
#[test]
fn single_rrset_removal_is_rejected_incrementally() {
    let t = history::churn_timeline(Date::new(2019, 4, 1), 2, 6);
    let k = key();
    let p = publisher(2);
    let z0 = p.publish(&t.snapshot(0));
    let z1 = p.publish(&t.snapshot(1));
    let mut diff = ZoneDiff::compute(&z0, &z1);
    let victim = z1
        .tlds()
        .into_iter()
        .find(|tld| {
            z1.get(tld, RType::DS).is_some()
                && !diff.added.iter().chain(&diff.changed).any(|s| s.name == *tld)
                && !diff.removed.iter().any(|(n, _)| n == tld)
        })
        .expect("an untouched signed TLD");
    diff.removed.push((victim.clone(), RType::DS));

    let mut vz = VerifiedZone::full_verify(&z0, &k, now_on(0)).unwrap();
    assert!(
        matches!(
            vz.apply_diff(&diff, now_on(1)),
            Err(VerifyError::BadNsecBitmap(n)) if n == victim
        ),
        "DS strip must be caught by the owner's NSEC bitmap"
    );
}

/// A diff whose content changed but which leaves the apex ZONEMD untouched
/// is rejected — even when the attacker also replays yesterday's (valid!)
/// ZONEMD-covering RRSIG so every signature at the apex still verifies.
/// Honest publishers always re-digest; "content changed, digest didn't" is
/// a contradiction the incremental path refuses outright.
#[test]
fn zonemd_untouched_by_nonempty_diff_is_rejected() {
    use rootless_proto::rr::RData;
    use rootless_zone::rrset::RrSet;

    let t = history::churn_timeline(Date::new(2019, 4, 1), 2, 7);
    let k = key();
    let p = publisher(2);
    let z0 = p.publish(&t.snapshot(0));
    let z1 = p.publish(&t.snapshot(1));
    let mut diff = ZoneDiff::compute(&z0, &z1);
    // Keep yesterday's ZONEMD record ...
    diff.added.retain(|s| s.rtype != RType::ZONEMD);
    diff.changed.retain(|s| s.rtype != RType::ZONEMD);
    // ... and splice yesterday's still-valid ZONEMD-covering RRSIG into the
    // new apex RRSIG set, so no signature check can object.
    let apex = z0.origin().clone();
    let covers_zonemd = |rd: &RData| matches!(rd, RData::Rrsig(s) if s.type_covered == RType::ZONEMD);
    let stale_sig = z0
        .get(&apex, RType::RRSIG)
        .unwrap()
        .rdatas()
        .iter()
        .find(|rd| covers_zonemd(rd))
        .unwrap()
        .clone();
    let new_sigs = diff
        .changed
        .iter_mut()
        .find(|s| s.name == apex && s.rtype == RType::RRSIG)
        .expect("apex RRSIG changes every day");
    let mut spliced = RrSet::new(apex.clone(), RType::RRSIG, new_sigs.ttl);
    for rd in new_sigs.rdatas() {
        if !covers_zonemd(rd) {
            spliced.push(new_sigs.ttl, rd.clone());
        }
    }
    spliced.push(new_sigs.ttl, stale_sig);
    *new_sigs = spliced.canonicalized();

    let mut vz = VerifiedZone::full_verify(&z0, &k, now_on(0)).unwrap();
    assert!(matches!(vz.apply_diff(&diff, now_on(1)), Err(VerifyError::ZonemdFields)));
}
