//! Negative-path coverage for the chain of trust: each test forges,
//! truncates, or misapplies DNSSEC material and asserts validation fails
//! at exactly the layer the tampering hit. The §3 argument — a resolver
//! can fetch the root zone from *anywhere* because the chain, not the
//! channel, carries the trust — only holds if these paths actually reject.

use std::net::Ipv4Addr;

use rootless_dnssec::chain::{sign_hierarchy, validate_chain, ChainError, SignedHierarchy};
use rootless_dnssec::nsec;
use rootless_dnssec::sign::DnssecError;
use rootless_proto::name::Name;
use rootless_proto::rr::{RData, RType, Record, Soa};
use rootless_zone::rootzone::{self, RootZoneConfig};
use rootless_zone::zone::Zone;

fn tld_stub(tld: &Name, seed: u64) -> Zone {
    let mut z = Zone::new(tld.clone());
    let ns = tld.child("ns1").unwrap();
    z.insert(Record::new(
        tld.clone(),
        86_400,
        RData::Soa(Soa {
            mname: ns.clone(),
            rname: tld.child("hostmaster").unwrap(),
            serial: 1,
            refresh: 1,
            retry: 1,
            expire: 1,
            minimum: 3_600,
        }),
    ))
    .unwrap();
    z.insert(Record::new(tld.clone(), 172_800, RData::Ns(ns.clone()))).unwrap();
    z.insert(Record::new(ns, 172_800, RData::A(Ipv4Addr::new(10, 0, 0, seed as u8 + 1))))
        .unwrap();
    z
}

fn hierarchy() -> SignedHierarchy {
    let root = rootzone::build(&RootZoneConfig::small(12));
    let tld_zones: Vec<Zone> = root
        .tlds()
        .into_iter()
        .take(2)
        .enumerate()
        .map(|(i, tld)| tld_stub(&tld, i as u64))
        .collect();
    sign_hierarchy(&root, tld_zones, 0xadf0, 0, 1_000_000)
}

/// Flips one byte in the signature of the first RRSIG covering `rtype`
/// records at any owner in `zone`.
fn tamper_one_rrsig(zone: &Zone, covered: RType) -> Zone {
    let mut out = Zone::new(zone.origin().clone());
    let mut tampered = false;
    for set in zone.rrsets() {
        let mut copy = set.clone();
        if !tampered && set.rtype == RType::RRSIG {
            let rewritten: Vec<(u32, RData)> = copy
                .rdatas()
                .iter()
                .map(|rd| {
                    let mut rd = (*rd).clone();
                    if !tampered {
                        if let RData::Rrsig(sig) = &mut rd {
                            if sig.type_covered == covered {
                                sig.signature[0] ^= 0xff;
                                tampered = true;
                            }
                        }
                    }
                    (copy.ttl, rd)
                })
                .collect();
            let mut fresh = rootless_zone::rrset::RrSet::new(copy.name.clone(), copy.rtype, copy.ttl);
            for (ttl, rd) in rewritten {
                fresh.push(ttl, rd);
            }
            copy = fresh;
        }
        out.insert_rrset(copy).unwrap();
    }
    assert!(tampered, "no RRSIG covering {covered:?} found to tamper");
    out
}

#[test]
fn tampered_rrsig_bytes_fail_with_bad_signature() {
    let h = hierarchy();
    let (_, zone) = h.tld_zones.iter().next().unwrap();
    let forged = tamper_one_rrsig(zone, RType::NS);
    match validate_chain(&h.root_zone, &h.root_key, &forged, 100) {
        Err(ChainError::TldZone(DnssecError::BadSignature(_))) => {}
        other => panic!("expected TldZone(BadSignature), got {other:?}"),
    }
}

#[test]
fn tampered_root_rrsig_fails_at_the_root() {
    let h = hierarchy();
    let (_, zone) = h.tld_zones.iter().next().unwrap();
    let forged_root = tamper_one_rrsig(&h.root_zone, RType::NS);
    match validate_chain(&forged_root, &h.root_key, zone, 100) {
        Err(ChainError::Root(DnssecError::BadSignature(_))) => {}
        other => panic!("expected Root(BadSignature), got {other:?}"),
    }
}

#[test]
fn truncated_chain_missing_dnskey_is_rejected() {
    let h = hierarchy();
    let (tld, zone) = h.tld_zones.iter().next().unwrap();
    let mut truncated = zone.clone();
    truncated.remove_rrset(tld, RType::DNSKEY);
    match validate_chain(&h.root_zone, &h.root_key, &truncated, 100) {
        // Removing the DNSKEY either orphans its RRSIG (caught by zone
        // validation) or, if validation tolerates that, leaves no key for
        // the DS to match.
        Err(ChainError::NoDnskey(_)) | Err(ChainError::TldZone(_)) => {}
        other => panic!("expected NoDnskey/TldZone, got {other:?}"),
    }
}

#[test]
fn truncated_chain_stripped_rrsig_is_rejected() {
    let h = hierarchy();
    let (tld, zone) = h.tld_zones.iter().next().unwrap();
    // Strip every RRSIG covering the NS set: an on-path stripper hoping
    // the resolver downgrades to unsigned acceptance.
    let mut stripped = Zone::new(zone.origin().clone());
    for set in zone.rrsets() {
        if set.rtype == RType::RRSIG && set.name == *tld {
            let mut fresh =
                rootless_zone::rrset::RrSet::new(set.name.clone(), set.rtype, set.ttl);
            let mut kept = 0;
            for rd in set.rdatas() {
                if let RData::Rrsig(sig) = rd {
                    if sig.type_covered == RType::NS {
                        continue;
                    }
                }
                fresh.push(set.ttl, rd.clone());
                kept += 1;
            }
            if kept > 0 {
                stripped.insert_rrset(fresh).unwrap();
            }
            continue;
        }
        stripped.insert_rrset(set.clone()).unwrap();
    }
    match validate_chain(&h.root_zone, &h.root_key, &stripped, 100) {
        Err(ChainError::TldZone(DnssecError::MissingSignature(_))) => {}
        other => panic!("expected TldZone(MissingSignature), got {other:?}"),
    }
}

#[test]
fn nsec_span_not_covering_qname_is_rejected() {
    // An attacker replays a real NSEC record from elsewhere in the zone to
    // deny a name it does not actually span. `covers` must say no.
    let apex = Name::root();
    let alpha = Name::parse("alpha").unwrap();
    let mike = Name::parse("mike").unwrap();
    let zulu = Name::parse("zulu").unwrap();
    // Span (alpha, mike): denies only names strictly between them.
    let nsec = Record::new(
        alpha.clone(),
        3_600,
        RData::Nsec(mike.clone(), vec![RType::NS, RType::NSEC, RType::RRSIG]),
    );
    let inside = Name::parse("bravo").unwrap();
    assert!(nsec::covers(&nsec, &inside), "sanity: span must cover bravo");
    // Outside the span, before the owner, at the boundaries: all rejected.
    assert!(!nsec::covers(&nsec, &zulu), "replayed NSEC must not deny zulu");
    assert!(!nsec::covers(&nsec, &apex));
    assert!(!nsec::covers(&nsec, &alpha), "owner itself exists");
    assert!(!nsec::covers(&nsec, &mike), "next name itself exists");

    // The wraparound record (last owner -> apex) covers names after the
    // owner but nothing inside the ordinary part of the zone.
    let wrap = Record::new(
        zulu.clone(),
        3_600,
        RData::Nsec(apex.clone(), vec![RType::NS]),
    );
    assert!(nsec::covers(&wrap, &Name::parse("zz-beyond").unwrap()));
    assert!(!nsec::covers(&wrap, &inside), "wraparound must not deny bravo");
}

#[test]
fn denial_for_never_produces_a_non_covering_nsec() {
    // Property-style sweep: for a batch of absent names, the denial the
    // zone produces must cover the very name it denies.
    let zone = nsec::build_chain(&rootzone::build(&RootZoneConfig::small(30)));
    for i in 0..40 {
        let qname = Name::parse(&format!("hole-{i:02}-no-such-tld")).unwrap();
        if zone.name_exists(&qname) {
            continue;
        }
        let denial = nsec::denial_for(&zone, &qname)
            .unwrap_or_else(|| panic!("no denial for {qname}"));
        assert!(nsec::covers(&denial, &qname), "{qname}: denial does not cover");
    }
}
