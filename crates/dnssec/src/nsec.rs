//! NSEC chains: authenticated denial of existence (RFC 4034 §4).
//!
//! More than 60% of the queries hitting the roots ask for names that do not
//! exist (§2.2), so the root's *negative* answers matter as much as its
//! referrals. A signed root zone proves nonexistence with NSEC records
//! linking every owner name to the next in canonical order; the final record
//! wraps back to the apex.

use rootless_proto::name::Name;
use rootless_proto::rr::{RData, RType, Record};
use rootless_zone::zone::Zone;

/// Builds the NSEC chain for `zone`, returning a copy with one NSEC record
/// per existing owner name. Must run before RRset signing so the NSECs get
/// signatures too.
pub fn build_chain(zone: &Zone) -> Zone {
    let mut out = zone.clone();
    // Distinct owner names in canonical order, with their type lists.
    let mut owners: Vec<Name> = Vec::new();
    let mut types: std::collections::HashMap<Name, Vec<RType>> = std::collections::HashMap::new();
    for set in zone.rrsets() {
        if owners.last() != Some(&set.name) {
            owners.push(set.name.clone());
        }
        types.entry(set.name.clone()).or_default().push(set.rtype);
    }
    let ttl = zone.soa().map(|s| s.minimum).unwrap_or(86_400);
    for (i, owner) in owners.iter().enumerate() {
        let next = owners[(i + 1) % owners.len()].clone();
        let mut bitmap = types[owner].clone();
        bitmap.push(RType::NSEC);
        bitmap.push(RType::RRSIG);
        out.insert(Record::new(owner.clone(), ttl, RData::Nsec(next, bitmap)))
            .expect("nsec owner in zone");
    }
    out
}

/// Finds the NSEC record proving `qname` does not exist: the chain entry
/// whose owner precedes `qname` and whose next-name follows it (with
/// wraparound at the apex).
pub fn denial_for(zone: &Zone, qname: &Name) -> Option<Record> {
    let mut candidates: Vec<&rootless_zone::rrset::RrSet> =
        zone.rrsets().filter(|s| s.rtype == RType::NSEC).collect();
    if candidates.is_empty() {
        return None;
    }
    candidates.sort_by(|a, b| a.name.canonical_cmp(&b.name));
    for set in &candidates {
        if let RData::Nsec(next, _) = &set.rdatas()[0] {
            let after_owner = set.name.canonical_cmp(qname) == std::cmp::Ordering::Less;
            let before_next = qname.canonical_cmp(next) == std::cmp::Ordering::Less;
            let wraps = next.canonical_cmp(&set.name) != std::cmp::Ordering::Greater;
            if (after_owner && before_next) || (wraps && (after_owner || before_next)) {
                return set.records().into_iter().next();
            }
        }
    }
    None
}

/// Checks an NSEC record actually covers (denies) `qname`.
pub fn covers(nsec: &Record, qname: &Name) -> bool {
    let RData::Nsec(next, _) = &nsec.rdata else { return false };
    let after_owner = nsec.name.canonical_cmp(qname) == std::cmp::Ordering::Less;
    let before_next = qname.canonical_cmp(next) == std::cmp::Ordering::Less;
    let wraps = next.canonical_cmp(&nsec.name) != std::cmp::Ordering::Greater;
    (after_owner && before_next) || (wraps && (after_owner || before_next))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rootless_zone::rootzone::{self, RootZoneConfig};

    fn chained_zone() -> Zone {
        build_chain(&rootzone::build(&RootZoneConfig::small(25)))
    }

    #[test]
    fn every_owner_gets_nsec() {
        let plain = rootzone::build(&RootZoneConfig::small(25));
        let zone = build_chain(&plain);
        let owners: std::collections::HashSet<Name> =
            plain.rrsets().map(|s| s.name.clone()).collect();
        let nsec_owners: std::collections::HashSet<Name> = zone
            .rrsets()
            .filter(|s| s.rtype == RType::NSEC)
            .map(|s| s.name.clone())
            .collect();
        assert_eq!(owners, nsec_owners);
    }

    #[test]
    fn chain_is_a_single_cycle() {
        let zone = chained_zone();
        let nsecs: Vec<_> = zone.rrsets().filter(|s| s.rtype == RType::NSEC).collect();
        let start = nsecs[0].name.clone();
        let mut seen = 0;
        let mut cursor = start.clone();
        loop {
            let set = zone.get(&cursor, RType::NSEC).expect("chain continues");
            let RData::Nsec(next, _) = &set.rdatas()[0] else { panic!() };
            cursor = next.clone();
            seen += 1;
            assert!(seen <= nsecs.len(), "chain loops early");
            if cursor == start {
                break;
            }
        }
        assert_eq!(seen, nsecs.len(), "chain must visit every owner once");
    }

    #[test]
    fn denial_found_for_bogus_tld() {
        let zone = chained_zone();
        let bogus = Name::parse("zzz-no-such-tld").unwrap();
        assert!(zone.get(&bogus, RType::NS).is_none());
        let nsec = denial_for(&zone, &bogus).expect("denial exists");
        assert!(covers(&nsec, &bogus));
    }

    #[test]
    fn denial_for_many_random_absent_names() {
        let zone = chained_zone();
        for i in 0..50 {
            let name = Name::parse(&format!("absent-{i}.example-under-tld")).unwrap();
            if zone.name_exists(&name) {
                continue;
            }
            let nsec = denial_for(&zone, &name).unwrap_or_else(|| panic!("no denial for {name}"));
            assert!(covers(&nsec, &name), "{name} not covered by {nsec}");
        }
    }

    #[test]
    fn existing_name_not_covered() {
        let zone = chained_zone();
        let tld = zone.tlds()[0].clone();
        if let Some(nsec) = denial_for(&zone, &tld) {
            // A denial record may exist structurally, but it must not claim
            // to cover an existing owner.
            assert!(!covers(&nsec, &tld), "NSEC covers existing name {tld}");
        }
    }

    #[test]
    fn nsec_bitmap_lists_owner_types() {
        let plain = rootzone::build(&RootZoneConfig::small(25));
        let zone = build_chain(&plain);
        let tld = plain.tlds()[0].clone();
        let set = zone.get(&tld, RType::NSEC).unwrap();
        let RData::Nsec(_, types) = &set.rdatas()[0] else { panic!() };
        assert!(types.contains(&RType::NS));
        assert!(types.contains(&RType::NSEC));
    }
}
