//! Zone signing keys for the simulated DNSSEC scheme.
//!
//! **Substitution note (DESIGN.md §2):** real DNSSEC signs RRsets with
//! public-key algorithms (RSA, ECDSA, Ed25519). No cryptography crates are in
//! the approved offline set, so this workspace uses algorithm number **250**
//! (private range): the signature is `HMAC-SHA256(key, data)` and the DNSKEY
//! record publishes the key itself. Within the simulation the signing key is
//! held only by the zone publisher, and on-path attackers are modeled as
//! *not* knowing it — which reproduces the property the paper relies on
//! ("the integrity of the contents [is] cryptographically secure") without
//! reproducing the asymmetric math. Nothing here is real security.

use rootless_proto::name::Name;
use rootless_proto::rr::{Dnskey, Ds, RData, Record};
use rootless_util::rng::DetRng;
use rootless_util::sha256;

/// The algorithm number this workspace uses for its simulated scheme.
pub const SIM_ALGORITHM: u8 = 250;
/// Digest type used in DS records (2 = SHA-256, as in real deployments).
pub const DS_DIGEST_TYPE: u8 = 2;
/// The hash-algorithm number our ZONEMD records carry (private range; the
/// RFC's value 1 means SHA-384 which we do not implement).
pub const ZONEMD_HASH_ALG: u8 = 240;

/// A zone signing key (the simulation does not distinguish KSK/ZSK roles
/// cryptographically, but carries the flag for fidelity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZoneKey {
    /// The zone this key signs.
    pub zone: Name,
    /// DNSKEY flags: 257 = KSK (SEP bit), 256 = ZSK.
    pub flags: u16,
    /// The HMAC key (doubles as the DNSKEY "public key" field).
    pub key: Vec<u8>,
}

impl ZoneKey {
    /// Generates a key for `zone` deterministically from `seed`.
    pub fn generate(zone: Name, ksk: bool, seed: u64) -> ZoneKey {
        let mut rng = DetRng::seed_from_u64(seed ^ if ksk { 0x5e9 } else { 0x25c });
        let key: Vec<u8> = (0..32).map(|_| rng.next_u64() as u8).collect();
        ZoneKey { zone, flags: if ksk { 257 } else { 256 }, key }
    }

    /// The DNSKEY RDATA for this key.
    pub fn dnskey(&self) -> Dnskey {
        Dnskey {
            flags: self.flags,
            protocol: 3,
            algorithm: SIM_ALGORITHM,
            public_key: self.key.clone(),
        }
    }

    /// The DNSKEY record (TTL matches the root zone's 2-day delegation TTL).
    pub fn dnskey_record(&self, ttl: u32) -> Record {
        Record::new(self.zone.clone(), ttl, RData::Dnskey(self.dnskey()))
    }

    /// RFC 4034 key tag of the DNSKEY.
    pub fn key_tag(&self) -> u16 {
        self.dnskey().key_tag()
    }

    /// The DS record a parent zone would publish for this key: digest over
    /// `owner canonical wire || DNSKEY rdata` (RFC 4034 §5.1.4).
    pub fn ds(&self, ttl: u32) -> Record {
        let mut buf = self.zone.canonical_wire();
        let k = self.dnskey();
        buf.extend_from_slice(&k.flags.to_be_bytes());
        buf.push(k.protocol);
        buf.push(k.algorithm);
        buf.extend_from_slice(&k.public_key);
        let digest = sha256::sha256(&buf).to_vec();
        Record::new(
            self.zone.clone(),
            ttl,
            RData::Ds(Ds {
                key_tag: self.key_tag(),
                algorithm: SIM_ALGORITHM,
                digest_type: DS_DIGEST_TYPE,
                digest,
            }),
        )
    }

    /// Signs raw bytes.
    pub fn sign_bytes(&self, data: &[u8]) -> Vec<u8> {
        sha256::hmac_sha256(&self.key, data).to_vec()
    }

    /// Verifies a signature over raw bytes.
    pub fn verify_bytes(&self, data: &[u8], signature: &[u8]) -> bool {
        if signature.len() != sha256::DIGEST_LEN {
            return false;
        }
        let mut expect = [0u8; sha256::DIGEST_LEN];
        expect.copy_from_slice(&self.sign_bytes(data));
        let mut got = [0u8; sha256::DIGEST_LEN];
        got.copy_from_slice(signature);
        sha256::digest_eq(&expect, &got)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> ZoneKey {
        ZoneKey::generate(Name::root(), true, 42)
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(key(), ZoneKey::generate(Name::root(), true, 42));
        assert_ne!(key().key, ZoneKey::generate(Name::root(), true, 43).key);
        assert_ne!(key().key, ZoneKey::generate(Name::root(), false, 42).key);
    }

    #[test]
    fn ksk_flag() {
        assert_eq!(key().flags, 257);
        assert!(key().dnskey().is_ksk());
        assert_eq!(ZoneKey::generate(Name::root(), false, 1).flags, 256);
    }

    #[test]
    fn sign_verify_roundtrip() {
        let k = key();
        let sig = k.sign_bytes(b"the root zone");
        assert!(k.verify_bytes(b"the root zone", &sig));
        assert!(!k.verify_bytes(b"a tampered zone", &sig));
        assert!(!k.verify_bytes(b"the root zone", &sig[..31]));
    }

    #[test]
    fn wrong_key_fails_verification() {
        let k1 = key();
        let k2 = ZoneKey::generate(Name::root(), true, 99);
        let sig = k1.sign_bytes(b"data");
        assert!(!k2.verify_bytes(b"data", &sig));
    }

    #[test]
    fn ds_digest_binds_key_and_owner() {
        let k = key();
        let ds1 = k.ds(86_400);
        let ds2 = k.ds(86_400);
        assert_eq!(ds1, ds2);
        let other = ZoneKey::generate(Name::parse("com").unwrap(), true, 42);
        let RData::Ds(d1) = &ds1.rdata else { panic!() };
        let RData::Ds(d2) = &other.ds(86_400).rdata else { panic!() };
        assert_ne!(d1.digest, d2.digest);
    }

    #[test]
    fn key_tag_matches_dnskey() {
        let k = key();
        assert_eq!(k.key_tag(), k.dnskey().key_tag());
    }
}
