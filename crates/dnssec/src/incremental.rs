//! Incremental re-verification of a signed root zone under daily churn
//! (ROADMAP item 4, the Janus-style pipeline).
//!
//! A resolver that keeps a local root copy must re-validate it on every
//! daily update. From scratch that is O(zone): one signature check per
//! RRset, a walk of the whole NSEC chain, and a full ZONEMD digest pass.
//! But a daily diff touches a handful of owners, and DNSSEC state is
//! per-RRset, so almost all of yesterday's work is still valid.
//! [`VerifiedZone`] caches that state — per-owner chain verdicts and
//! signature validity windows, NSEC span links, and a per-RRset digest tree
//! — and, given a [`ZoneDiff`], re-checks only
//!
//! * the RRsets at owners the diff touched (signature checks),
//! * the NSEC spans at touched owners plus the spans *adjacent* to added
//!   and removed owners — the span a silent deletion breaks, since
//!   removals carry no signature of their own, and
//! * the apex ZONEMD record's fields (its signature rides the apex, which
//!   every serial bump touches), maintaining the digest tree instead of
//!   re-hashing the whole zone.
//!
//! The differential gates (`prop_incremental`, `incremental_history`) pin
//! verdicts, cached state, and denial answers to the from-scratch path
//! across random churn and the sampled 2009→2019 history; the
//! `plant-skip-span` feature deletes one adjacent-span check so the gates
//! can prove they are not vacuous.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use rootless_proto::name::Name;
use rootless_proto::rr::{RData, RType, Record, Rrsig, Zonemd};
use rootless_util::sha256::{self, Sha256};
use rootless_zone::diff::{DiffError, ZoneDiff};
use rootless_zone::rrset::{RrKey, RrSet};
use rootless_zone::zone::Zone;

use crate::keys::{ZoneKey, ZONEMD_HASH_ALG};
use crate::nsec;
use crate::sign::{self, DnssecError};
use crate::zonemd::{self, SCHEME_SIMPLE};

/// Work counters for one verification pass (full or incremental). The
/// full-vs-incremental cost comparison in `BENCH_verify.json` and the
/// `experiments verify` table come straight off these.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// RRsets whose covering signature was verified.
    pub sets_verified: u64,
    /// NSEC span + bitmap checks performed.
    pub spans_checked: u64,
    /// Digest-tree leaves recomputed.
    pub leaves_updated: u64,
    /// Distinct owner names examined.
    pub owners_touched: u64,
}

/// Cached validation state of one owner name — a delegation, the apex, or a
/// glue host. Everything here is a pure function of the verified zone's
/// content, which is what lets the differential gates compare incremental
/// and from-scratch state byte-for-byte.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnerState {
    /// Successor in the NSEC chain (canonical order, wrapping at the apex).
    pub nsec_next: Name,
    /// Earliest expiration among the owner's verified signatures.
    pub earliest_expiration: u32,
    /// Latest inception among the owner's verified signatures.
    pub latest_inception: u32,
}

/// Why a zone — or a diff against a verified one — failed verification.
/// Any incremental rejection sends the consumer to the full-verification
/// fallback (see `RootZoneManager`); a full rejection is final.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// A signature or digest check failed.
    Dnssec(DnssecError),
    /// The diff itself failed to apply.
    Diff(DiffError),
    /// The applied diff did not land the zone on its advertised serial.
    SerialDrift {
        /// Serial the diff advertised (`serial_to`).
        expected: u32,
        /// Serial the zone ended up with.
        found: u32,
    },
    /// An owner in the zone lacks a single NSEC record.
    MissingNsec(Name),
    /// An NSEC span does not link to the owner's canonical successor.
    BadNsecSpan {
        /// Owner of the bad span.
        owner: Name,
        /// The canonical successor the span should name.
        expected: Name,
        /// The successor it actually names.
        found: Name,
    },
    /// An NSEC bitmap does not list exactly the owner's types.
    BadNsecBitmap(Name),
    /// The apex ZONEMD record is absent, stale, or was not updated by a
    /// non-empty diff.
    ZonemdFields,
    /// The cached signatures' validity window excludes `now`; the zone must
    /// be re-verified from scratch.
    WindowElapsed {
        /// Earliest expiration among cached signatures.
        earliest_expiration: u32,
        /// The verification time that fell outside the window.
        now: u32,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Dnssec(e) => write!(f, "{e}"),
            VerifyError::Diff(e) => write!(f, "{e}"),
            VerifyError::SerialDrift { expected, found } => {
                write!(f, "diff advertised serial {expected} but zone landed on {found}")
            }
            VerifyError::MissingNsec(n) => write!(f, "no single NSEC record at {n}"),
            VerifyError::BadNsecSpan { owner, expected, found } => {
                write!(f, "NSEC at {owner} links to {found}, canonical successor is {expected}")
            }
            VerifyError::BadNsecBitmap(n) => {
                write!(f, "NSEC bitmap at {n} does not match the owner's types")
            }
            VerifyError::ZonemdFields => write!(f, "apex ZONEMD fields stale or untouched"),
            VerifyError::WindowElapsed { earliest_expiration, now } => {
                write!(f, "cached signatures expire at {earliest_expiration}, now {now}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<DnssecError> for VerifyError {
    fn from(e: DnssecError) -> Self {
        VerifyError::Dnssec(e)
    }
}

impl From<DiffError> for VerifyError {
    fn from(e: DiffError) -> Self {
        VerifyError::Diff(e)
    }
}

/// A zone together with its cached validation state.
///
/// Built once with [`VerifiedZone::full_verify`]; advanced day-over-day
/// with [`VerifiedZone::apply_diff`], which does O(touched · log n) work.
/// If `apply_diff` returns an error the state may be partially updated —
/// discard the value and fall back to `full_verify` on the fresh copy.
#[derive(Clone, Debug)]
pub struct VerifiedZone {
    zone: Zone,
    key: ZoneKey,
    owners: BTreeMap<Name, OwnerState>,
    leaves: BTreeMap<RrKey, [u8; 32]>,
    /// Conservative window over *all* cached signatures: `min` expiration /
    /// `max` inception ever observed (removals never widen it back).
    earliest_expiration: u32,
    latest_inception: u32,
    /// Work counters of the pass that produced or last updated this state.
    pub stats: VerifyStats,
}

impl VerifiedZone {
    /// Verifies `zone` from scratch at time `now`: every RRset's covering
    /// signature, the complete NSEC chain (one NSEC per owner, spans linking
    /// canonical successors, bitmaps listing exactly the owner's types), and
    /// the flat ZONEMD digest plus its signature — then builds the cached
    /// state the incremental path maintains.
    pub fn full_verify(zone: &Zone, key: &ZoneKey, now: u32) -> Result<VerifiedZone, VerifyError> {
        if zone.get(zone.origin(), RType::DNSKEY).is_none() {
            return Err(DnssecError::MissingDnskey.into());
        }
        let mut stats = VerifyStats::default();
        // Distinct owners in canonical order (the zone iterates by RrKey).
        let mut owner_list: Vec<Name> = Vec::new();
        for set in zone.rrsets() {
            if owner_list.last() != Some(&set.name) {
                owner_list.push(set.name.clone());
            }
        }
        let mut owners = BTreeMap::new();
        let mut earliest = u32::MAX;
        let mut latest = 0u32;
        for (i, owner) in owner_list.iter().enumerate() {
            let (exp, inc) = verify_sets_at(zone, key, owner, now, &mut stats)?;
            let expected_next = owner_list[(i + 1) % owner_list.len()].clone();
            check_span(zone, owner, &expected_next, &mut stats)?;
            earliest = earliest.min(exp);
            latest = latest.max(inc);
            owners.insert(
                owner.clone(),
                OwnerState { nsec_next: expected_next, earliest_expiration: exp, latest_inception: inc },
            );
        }
        // The from-scratch whole-file pass: flat digest + its signature.
        zonemd::verify(zone, Some((key, now)))?;
        let mut leaves = BTreeMap::new();
        for set in zone.rrsets() {
            if let Some(bytes) = zonemd::leaf_bytes(zone.origin(), set) {
                leaves.insert(set.key(), sha256::sha256(&bytes));
                stats.leaves_updated += 1;
            }
        }
        stats.owners_touched = owner_list.len() as u64;
        Ok(VerifiedZone {
            zone: zone.clone(),
            key: key.clone(),
            owners,
            leaves,
            earliest_expiration: earliest,
            latest_inception: latest,
            stats,
        })
    }

    /// Applies `diff` and re-verifies incrementally at time `now`,
    /// returning the work done. Checks only the owners the diff touched,
    /// the NSEC spans adjacent to appeared/vanished owners, and the apex
    /// ZONEMD fields; untouched cached state is trusted as long as `now`
    /// stays inside its signature windows.
    ///
    /// On `Err` the state may be partially updated: discard this value and
    /// fall back to [`VerifiedZone::full_verify`] on a fresh full copy.
    pub fn apply_diff(&mut self, diff: &ZoneDiff, now: u32) -> Result<VerifyStats, VerifyError> {
        let mut stats = VerifyStats::default();
        // Untouched signatures are only as good as their windows.
        if now > self.earliest_expiration || now < self.latest_inception {
            return Err(VerifyError::WindowElapsed {
                earliest_expiration: self.earliest_expiration,
                now,
            });
        }
        diff.apply(&mut self.zone)?;
        if self.zone.serial() != diff.serial_to {
            return Err(VerifyError::SerialDrift {
                expected: diff.serial_to,
                found: self.zone.serial(),
            });
        }

        // Owners the diff touched, and owners it removed outright.
        let mut touched: BTreeSet<Name> = BTreeSet::new();
        let mut vanished: BTreeSet<Name> = BTreeSet::new();
        for set in diff.added.iter().chain(&diff.changed) {
            touched.insert(set.name.clone());
        }
        for (name, _) in &diff.removed {
            if self.zone.name_exists(name) {
                touched.insert(name.clone());
            } else {
                vanished.insert(name.clone());
            }
        }
        // Owners that did not exist before this diff: their predecessors'
        // spans must now point at them.
        let appeared: Vec<Name> =
            touched.iter().filter(|n| !self.owners.contains_key(*n)).cloned().collect();

        // Re-verify every RRset at a touched owner and rebuild its state.
        for owner in &touched {
            let (exp, inc) = verify_sets_at(&self.zone, &self.key, owner, now, &mut stats)?;
            self.earliest_expiration = self.earliest_expiration.min(exp);
            self.latest_inception = self.latest_inception.max(inc);
            self.owners.insert(
                owner.clone(),
                // nsec_next is filled by the span pass below.
                OwnerState { nsec_next: owner.clone(), earliest_expiration: exp, latest_inception: inc },
            );
        }
        for owner in &vanished {
            self.owners.remove(owner);
        }

        // Span checks: every touched owner, plus the predecessors of owners
        // that appeared or vanished. A deletion carries no signature — the
        // only thing that authenticates it is the predecessor's re-signed
        // NSEC now spanning past the victim, so skipping that adjacent
        // check (the planted `plant-skip-span` bug) lets silent removals
        // through.
        let mut span_targets: BTreeSet<Name> = touched.clone();
        for name in &appeared {
            if let Some(p) = self.predecessor(name) {
                span_targets.insert(p);
            }
        }
        #[cfg(not(feature = "plant-skip-span"))]
        for name in &vanished {
            if let Some(p) = self.predecessor(name) {
                span_targets.insert(p);
            }
        }
        for owner in &span_targets {
            if !self.owners.contains_key(owner) {
                continue;
            }
            let expected_next = self.successor(owner);
            check_span(&self.zone, owner, &expected_next, &mut stats)?;
            self.owners.get_mut(owner).expect("span target exists").nsec_next = expected_next;
        }

        // ZONEMD: any content change changes the flat digest, so an honest
        // non-empty diff must rewrite the apex ZONEMD record; its fields
        // must name the new serial, and its signature was re-verified above
        // as part of the touched apex.
        let apex = self.zone.origin().clone();
        if !diff.is_empty() {
            let zonemd_touched = diff
                .added
                .iter()
                .chain(&diff.changed)
                .any(|s| s.rtype == RType::ZONEMD && s.name == apex);
            if !zonemd_touched {
                return Err(VerifyError::ZonemdFields);
            }
        }
        let set = self.zone.get(&apex, RType::ZONEMD).ok_or(DnssecError::MissingZonemd)?;
        let RData::Zonemd(z) = &set.rdatas()[0] else {
            return Err(DnssecError::MissingZonemd.into());
        };
        if z.serial != self.zone.serial()
            || z.scheme != SCHEME_SIMPLE
            || z.hash_algorithm != ZONEMD_HASH_ALG
        {
            return Err(VerifyError::ZonemdFields);
        }

        // Digest-tree maintenance: recompute the leaves at touched owners,
        // drop the leaves of vanished ones.
        for owner in touched.iter().chain(&vanished) {
            let lo = RrKey::new(owner.clone(), RType::Unknown(0));
            let hi = RrKey::new(owner.clone(), RType::Unknown(u16::MAX));
            let stale: Vec<RrKey> = self.leaves.range(lo..=hi).map(|(k, _)| k.clone()).collect();
            for k in stale {
                self.leaves.remove(&k);
            }
            for set in self.zone.rrsets_at(owner) {
                if let Some(bytes) = zonemd::leaf_bytes(&apex, set) {
                    self.leaves.insert(set.key(), sha256::sha256(&bytes));
                    stats.leaves_updated += 1;
                }
            }
        }

        stats.owners_touched = (touched.len() + vanished.len()) as u64;
        self.stats = stats;
        Ok(stats)
    }

    /// The verified zone.
    pub fn zone(&self) -> &Zone {
        &self.zone
    }

    /// Number of distinct owner names under management.
    pub fn owner_count(&self) -> usize {
        self.owners.len()
    }

    /// Number of digest-tree leaves (one per digest-relevant RRset).
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Cached state of one owner, if present.
    pub fn owner_state(&self, name: &Name) -> Option<&OwnerState> {
        self.owners.get(name)
    }

    /// A digest over the entire cached state — owners, span links, per-owner
    /// signature windows, and digest-tree leaves. The differential gates
    /// compare this between the incremental and from-scratch paths; every
    /// input is a pure function of zone content, so the two must agree
    /// byte-for-byte.
    pub fn state_digest(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        for (name, st) in &self.owners {
            h.update(&name.canonical_wire());
            h.update(&st.nsec_next.canonical_wire());
            h.update(&st.earliest_expiration.to_be_bytes());
            h.update(&st.latest_inception.to_be_bytes());
        }
        for (k, leaf) in &self.leaves {
            h.update(&k.name.canonical_wire());
            h.update(&k.rtype().to_u16().to_be_bytes());
            h.update(leaf);
        }
        h.finish()
    }

    /// The NSEC record denying `qname`, answered from the cached owner map
    /// in O(log n) — byte-identical to [`nsec::denial_for`] over the same
    /// zone (gated by `prop_incremental`).
    pub fn denial_for(&self, qname: &Name) -> Option<Record> {
        if self.owners.contains_key(qname) {
            return None;
        }
        // The covering span belongs to qname's canonical predecessor; a
        // qname beyond the last owner is covered by the wraparound record.
        let pred = self
            .owners
            .range::<Name, _>((Bound::Unbounded, Bound::Excluded(qname.clone())))
            .next_back()
            .map(|(n, _)| n.clone())
            .or_else(|| self.owners.keys().next_back().cloned())?;
        let set = self.zone.get(&pred, RType::NSEC)?;
        set.records().into_iter().next()
    }

    /// Canonical successor of `owner` in the owner map (wraps to the first
    /// owner, i.e. the apex).
    fn successor(&self, owner: &Name) -> Name {
        self.owners
            .range::<Name, _>((Bound::Excluded(owner.clone()), Bound::Unbounded))
            .next()
            .map(|(n, _)| n.clone())
            .unwrap_or_else(|| self.owners.keys().next().expect("nonempty owner map").clone())
    }

    /// Canonical predecessor of `name` (wraps to the last owner when `name`
    /// sorts before every owner). `None` only on an empty map.
    fn predecessor(&self, name: &Name) -> Option<Name> {
        self.owners
            .range::<Name, _>((Bound::Unbounded, Bound::Excluded(name.clone())))
            .next_back()
            .map(|(n, _)| n.clone())
            .or_else(|| self.owners.keys().next_back().cloned())
    }
}

/// Verifies every non-RRSIG RRset at `owner` against `key` (the same
/// covering-signature logic as [`sign::validate_zone`], restricted to one
/// owner), returning the (earliest expiration, latest inception) over the
/// signatures that verified.
fn verify_sets_at(
    zone: &Zone,
    key: &ZoneKey,
    owner: &Name,
    now: u32,
    stats: &mut VerifyStats,
) -> Result<(u32, u32), VerifyError> {
    let mut earliest = u32::MAX;
    let mut latest = 0u32;
    for set in zone.rrsets_at(owner) {
        if set.rtype == RType::RRSIG {
            continue;
        }
        let what = || format!("{} {}", set.name, set.rtype);
        let sigs = zone
            .get(owner, RType::RRSIG)
            .ok_or_else(|| DnssecError::MissingSignature(what()))?;
        let covering: Vec<&Rrsig> = sigs
            .rdatas()
            .iter()
            .filter_map(|rd| match rd {
                RData::Rrsig(s) if s.type_covered == set.rtype => Some(s),
                _ => None,
            })
            .collect();
        if covering.is_empty() {
            return Err(DnssecError::MissingSignature(what()).into());
        }
        let mut verified = None;
        let mut last_err = None;
        for sig in covering {
            match sign::verify_rrset(key, set, sig, now) {
                Ok(()) => {
                    verified = Some(sig);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let Some(sig) = verified else {
            return Err(last_err.expect("at least one covering signature").into());
        };
        earliest = earliest.min(sig.expiration);
        latest = latest.max(sig.inception);
        stats.sets_verified += 1;
    }
    Ok((earliest, latest))
}

/// Checks the NSEC record at `owner`: exactly one rdata, linking to
/// `expected_next`, with a bitmap listing exactly the owner's present types.
fn check_span(
    zone: &Zone,
    owner: &Name,
    expected_next: &Name,
    stats: &mut VerifyStats,
) -> Result<(), VerifyError> {
    stats.spans_checked += 1;
    let set = zone.get(owner, RType::NSEC).ok_or_else(|| VerifyError::MissingNsec(owner.clone()))?;
    if set.len() != 1 {
        return Err(VerifyError::MissingNsec(owner.clone()));
    }
    let RData::Nsec(next, bitmap) = &set.rdatas()[0] else {
        return Err(VerifyError::MissingNsec(owner.clone()));
    };
    if next.canonical_cmp(expected_next) != std::cmp::Ordering::Equal {
        return Err(VerifyError::BadNsecSpan {
            owner: owner.clone(),
            expected: expected_next.clone(),
            found: next.clone(),
        });
    }
    let present: BTreeSet<u16> = zone.rrsets_at(owner).iter().map(|s| s.rtype.to_u16()).collect();
    let listed: BTreeSet<u16> = bitmap.iter().map(|t| t.to_u16()).collect();
    if present != listed {
        return Err(VerifyError::BadNsecBitmap(owner.clone()));
    }
    Ok(())
}

/// Publisher-side helper producing the fully-signed daily artifact: NSEC
/// chain, per-RRset signatures, and ZONEMD — with a **fixed** validity
/// window, so an unchanged RRset keeps a byte-identical RRSIG from one day
/// to the next and the daily diff stays proportional to actual churn. (A
/// publisher that re-signed everything daily would make every diff touch
/// every owner, degenerating incremental verification to the full pass;
/// real root-zone signing amortizes windows the same way.)
#[derive(Clone, Debug)]
pub struct Publisher {
    key: ZoneKey,
    inception: u32,
    expiration: u32,
}

impl Publisher {
    /// Creates a publisher signing with `key` over `[inception, expiration]`.
    pub fn new(key: ZoneKey, inception: u32, expiration: u32) -> Publisher {
        Publisher { key, inception, expiration }
    }

    /// The fixed `(inception, expiration)` window.
    pub fn window(&self) -> (u32, u32) {
        (self.inception, self.expiration)
    }

    /// Signs one raw zone snapshot end to end: DNSKEY + ZONEMD placeholder
    /// (so the apex NSEC bitmap lists them), NSEC chain, one RRSIG per
    /// RRset, then the final ZONEMD digest and its signature.
    pub fn publish(&self, raw: &Zone) -> Zone {
        let apex = raw.origin().clone();
        let mut z = raw.clone();
        z.insert(self.key.dnskey_record(172_800)).expect("dnskey at apex");
        z.insert(Record::new(
            apex,
            86_400,
            RData::Zonemd(Zonemd {
                serial: z.serial(),
                scheme: SCHEME_SIMPLE,
                hash_algorithm: ZONEMD_HASH_ALG,
                digest: vec![0; 32],
            }),
        ))
        .expect("zonemd at apex");
        let mut chained = nsec::build_chain(&z);
        // Sign everything except the placeholder; `zonemd::attach` signs the
        // real ZONEMD record once the digest is final.
        let sets: Vec<RrSet> = chained
            .rrsets()
            .filter(|s| s.rtype != RType::RRSIG && s.rtype != RType::ZONEMD)
            .cloned()
            .collect();
        for set in sets {
            chained
                .insert(sign::sign_rrset(&self.key, &set, self.inception, self.expiration))
                .expect("rrsig in zone");
        }
        zonemd::attach(&chained, Some(&self.key), self.inception, self.expiration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rootless_util::time::Date;
    use rootless_zone::churn::{ChurnConfig, Timeline};
    use rootless_zone::rootzone::RootZoneConfig;

    fn key() -> ZoneKey {
        ZoneKey::generate(Name::root(), true, 0x1f2e)
    }

    fn timeline(tlds: usize, days: u64) -> Timeline {
        Timeline::generate(
            RootZoneConfig::small(tlds),
            ChurnConfig::default(),
            Date::new(2019, 4, 1),
            days,
        )
    }

    fn publisher(days: u64) -> Publisher {
        Publisher::new(key(), 0, ((days + 10) * 86_400) as u32)
    }

    #[test]
    fn published_zone_fully_verifies() {
        let t = timeline(40, 3);
        let p = publisher(3);
        let zone = p.publish(&t.snapshot(0));
        let vz = VerifiedZone::full_verify(&zone, &key(), 3_600).unwrap();
        assert_eq!(vz.zone(), &zone);
        assert!(vz.stats.sets_verified > 40);
        assert_eq!(vz.stats.spans_checked, vz.owner_count() as u64);
        assert_eq!(vz.leaf_count() as u64, vz.stats.leaves_updated);
    }

    #[test]
    fn daily_diff_applies_incrementally_with_sublinear_work() {
        let t = timeline(60, 4);
        let p = publisher(4);
        let z0 = p.publish(&t.snapshot(0));
        let z1 = p.publish(&t.snapshot(1));
        let diff = ZoneDiff::compute(&z0, &z1);
        let mut vz = VerifiedZone::full_verify(&z0, &key(), 3_600).unwrap();
        let full_work = vz.stats.sets_verified;
        let stats = vz.apply_diff(&diff, 90_000).unwrap();
        assert_eq!(vz.zone(), &z1);
        assert!(
            stats.sets_verified * 4 < full_work,
            "incremental {} vs full {full_work}",
            stats.sets_verified
        );
        // And the refreshed state matches a from-scratch pass.
        let fresh = VerifiedZone::full_verify(&z1, &key(), 90_000).unwrap();
        assert_eq!(vz.state_digest(), fresh.state_digest());
    }

    #[test]
    fn unsigned_insertion_via_diff_is_rejected() {
        let t = timeline(40, 3);
        let p = publisher(3);
        let z0 = p.publish(&t.snapshot(0));
        let z1 = p.publish(&t.snapshot(1));
        let mut diff = ZoneDiff::compute(&z0, &z1);
        let victim = z1.tlds()[5].clone();
        let mut evil = RrSet::new(victim, RType::NS, 172_800);
        evil.push(172_800, RData::Ns(Name::parse("ns.attacker.example").unwrap()));
        diff.changed.push(evil);
        let mut vz = VerifiedZone::full_verify(&z0, &key(), 3_600).unwrap();
        assert!(matches!(
            vz.apply_diff(&diff, 90_000),
            Err(VerifyError::Dnssec(DnssecError::BadSignature(_)))
        ));
    }

    #[test]
    fn window_elapse_forces_full_fallback() {
        let t = timeline(30, 2);
        let p = Publisher::new(key(), 0, 10_000);
        let z0 = p.publish(&t.snapshot(0));
        let z1 = p.publish(&t.snapshot(1));
        let diff = ZoneDiff::compute(&z0, &z1);
        let mut vz = VerifiedZone::full_verify(&z0, &key(), 5_000).unwrap();
        assert!(matches!(
            vz.apply_diff(&diff, 20_000),
            Err(VerifyError::WindowElapsed { .. })
        ));
    }

    #[test]
    fn denial_matches_nsec_module() {
        let t = timeline(50, 2);
        let p = publisher(2);
        let zone = p.publish(&t.snapshot(0));
        let vz = VerifiedZone::full_verify(&zone, &key(), 3_600).unwrap();
        for i in 0..30 {
            let q = Name::parse(&format!("hole-{i:02}-no-such-tld")).unwrap();
            assert_eq!(vz.denial_for(&q), nsec::denial_for(&zone, &q), "{q}");
        }
        // Existing names are denied by neither path.
        let tld = zone.tlds()[0].clone();
        assert_eq!(vz.denial_for(&tld), None);
    }

    #[test]
    fn serial_drift_is_rejected() {
        let t = timeline(30, 2);
        let p = publisher(2);
        let z0 = p.publish(&t.snapshot(0));
        let z1 = p.publish(&t.snapshot(1));
        let mut diff = ZoneDiff::compute(&z0, &z1);
        diff.serial_to += 7;
        let mut vz = VerifiedZone::full_verify(&z0, &key(), 3_600).unwrap();
        assert!(matches!(
            vz.apply_diff(&diff, 90_000),
            Err(VerifyError::SerialDrift { .. })
        ));
    }
}
