//! Chain of trust: root trust anchor → root DNSKEY → TLD DS → TLD DNSKEY →
//! TLD data (RFC 4035 §5 structure over the simulated algorithm).
//!
//! §3 of the paper leans on exactly this property: a resolver holding the
//! root trust anchor can verify a downloaded root zone, and — because the
//! root zone carries DS records — everything below it verifies without
//! trusting any server or path. This module builds and validates such
//! hierarchies so the experiments can show that neither eliminating the
//! root *servers* nor swapping the distribution channel weakens the chain.

use std::collections::HashMap;

use rootless_proto::name::Name;
use rootless_proto::rr::{Dnskey, RData, RType};
use rootless_util::sha256::sha256;
use rootless_zone::zone::Zone;

use crate::keys::{ZoneKey, DS_DIGEST_TYPE, SIM_ALGORITHM};
use crate::sign::{self, DnssecError};

/// A fully signed root + TLD hierarchy.
pub struct SignedHierarchy {
    /// The signed root zone, carrying real DS records for every TLD key.
    pub root_zone: Zone,
    /// The root signing key (its owner is the trust anchor).
    pub root_key: ZoneKey,
    /// Signed TLD zones by name.
    pub tld_zones: HashMap<Name, Zone>,
    /// TLD signing keys by name.
    pub tld_keys: HashMap<Name, ZoneKey>,
}

/// Chain-validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The root zone itself failed validation.
    Root(DnssecError),
    /// The root zone has no DS RRset for this TLD (insecure delegation).
    NoDs(String),
    /// The TLD zone has no DNSKEY.
    NoDnskey(String),
    /// No DS digest matches any TLD DNSKEY.
    DsMismatch(String),
    /// The TLD zone failed validation under its (DS-matched) key.
    TldZone(DnssecError),
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::Root(e) => write!(f, "root zone invalid: {e}"),
            ChainError::NoDs(t) => write!(f, "no DS for {t} in the root zone"),
            ChainError::NoDnskey(t) => write!(f, "no DNSKEY in the {t} zone"),
            ChainError::DsMismatch(t) => write!(f, "DS/DNSKEY mismatch for {t}"),
            ChainError::TldZone(e) => write!(f, "TLD zone invalid: {e}"),
        }
    }
}

impl std::error::Error for ChainError {}

/// The DS digest for (`owner`, `key`): SHA-256 over owner canonical wire ||
/// DNSKEY RDATA (RFC 4034 §5.1.4).
pub fn ds_digest(owner: &Name, key: &Dnskey) -> Vec<u8> {
    let mut buf = owner.canonical_wire();
    buf.extend_from_slice(&key.flags.to_be_bytes());
    buf.push(key.protocol);
    buf.push(key.algorithm);
    buf.extend_from_slice(&key.public_key);
    sha256(&buf).to_vec()
}

/// Signs a root zone and a set of TLD zones into a consistent hierarchy:
/// per-TLD keys are generated from `seed`, the root zone's DS records are
/// replaced with digests of the real TLD keys, and every zone is RRset-signed.
pub fn sign_hierarchy(
    root: &Zone,
    tld_zones: Vec<Zone>,
    seed: u64,
    inception: u32,
    expiration: u32,
) -> SignedHierarchy {
    let root_key = ZoneKey::generate(Name::root(), true, seed);
    let mut unsigned_root = root.clone();
    let mut signed_tlds = HashMap::new();
    let mut tld_keys = HashMap::new();

    for zone in tld_zones {
        let tld = zone.origin().clone();
        let label_seed = tld
            .to_string()
            .bytes()
            .fold(seed ^ 0x71d, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64));
        let key = ZoneKey::generate(tld.clone(), false, label_seed);
        // Parent side: replace whatever DS the synthetic zone carried with
        // the real digest of this key.
        unsigned_root.remove_rrset(&tld, RType::DS);
        unsigned_root
            .insert(key.ds(86_400))
            .expect("tld within root");
        // Child side: sign the TLD zone with its key.
        let signed = sign::sign_zone(&zone, &key, inception, expiration);
        signed_tlds.insert(tld.clone(), signed);
        tld_keys.insert(tld, key);
    }

    let root_zone = sign::sign_zone(&unsigned_root, &root_key, inception, expiration);
    SignedHierarchy { root_zone, root_key, tld_zones: signed_tlds, tld_keys }
}

/// Validates the chain for one TLD at time `now`:
///
/// 1. the root zone validates under the trust anchor;
/// 2. the root zone's DS RRset for the TLD matches one of the TLD zone's
///    DNSKEYs (by key tag, algorithm and digest);
/// 3. the TLD zone validates under that key.
pub fn validate_chain(
    root_zone: &Zone,
    anchor: &ZoneKey,
    tld_zone: &Zone,
    now: u32,
) -> Result<(), ChainError> {
    sign::validate_zone(root_zone, anchor, now).map_err(ChainError::Root)?;

    let tld = tld_zone.origin().clone();
    let ds_set = root_zone
        .get(&tld, RType::DS)
        .ok_or_else(|| ChainError::NoDs(tld.to_string()))?;
    let key_set = tld_zone
        .get(&tld, RType::DNSKEY)
        .ok_or_else(|| ChainError::NoDnskey(tld.to_string()))?;

    let mut matched: Option<Dnskey> = None;
    'outer: for ds_rd in ds_set.rdatas() {
        let RData::Ds(ds) = ds_rd else { continue };
        if ds.digest_type != DS_DIGEST_TYPE || ds.algorithm != SIM_ALGORITHM {
            continue;
        }
        for key_rd in key_set.rdatas() {
            let RData::Dnskey(k) = key_rd else { continue };
            if k.key_tag() == ds.key_tag && ds_digest(&tld, k) == ds.digest {
                matched = Some(k.clone());
                break 'outer;
            }
        }
    }
    let matched = matched.ok_or_else(|| ChainError::DsMismatch(tld.to_string()))?;

    // Rebuild the verification key from the matched DNSKEY (the simulated
    // scheme publishes the HMAC key; see keys.rs for the substitution note).
    let tld_key = ZoneKey { zone: tld, flags: matched.flags, key: matched.public_key };
    sign::validate_zone(tld_zone, &tld_key, now).map_err(ChainError::TldZone)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rootless_proto::rr::Record;
    use rootless_zone::rootzone::{self, RootZoneConfig};
    use rootless_zone::rrset::RrSet;

    fn build_hierarchy(tlds: usize) -> SignedHierarchy {
        let root = rootzone::build(&RootZoneConfig::small(tlds));
        let tld_zones: Vec<Zone> = root
            .tlds()
            .into_iter()
            .take(3)
            .enumerate()
            .map(|(i, tld)| {
                let server = rootless_server_stub(&tld, i as u64);
                server
            })
            .collect();
        sign_hierarchy(&root, tld_zones, 0x1357, 0, 1_000_000)
    }

    // A tiny TLD zone without depending on rootless-server (dev-dep cycle).
    fn rootless_server_stub(tld: &Name, seed: u64) -> Zone {
        let mut z = Zone::new(tld.clone());
        let ns = tld.child("ns1").unwrap();
        z.insert(Record::new(
            tld.clone(),
            86_400,
            RData::Soa(rootless_proto::rr::Soa {
                mname: ns.clone(),
                rname: tld.child("hostmaster").unwrap(),
                serial: 1,
                refresh: 1,
                retry: 1,
                expire: 1,
                minimum: 3_600,
            }),
        ))
        .unwrap();
        z.insert(Record::new(tld.clone(), 172_800, RData::Ns(ns.clone()))).unwrap();
        z.insert(Record::new(ns, 172_800, RData::A(std::net::Ipv4Addr::new(10, 0, 0, seed as u8 + 1))))
            .unwrap();
        z
    }

    #[test]
    fn full_chain_validates() {
        let h = build_hierarchy(10);
        for (tld, zone) in &h.tld_zones {
            validate_chain(&h.root_zone, &h.root_key, zone, 100)
                .unwrap_or_else(|e| panic!("{tld}: {e}"));
        }
    }

    #[test]
    fn wrong_anchor_fails_at_the_root() {
        let h = build_hierarchy(10);
        let wrong = ZoneKey::generate(Name::root(), true, 0xbad);
        let (_, zone) = h.tld_zones.iter().next().unwrap();
        assert!(matches!(
            validate_chain(&h.root_zone, &wrong, zone, 100),
            Err(ChainError::Root(_))
        ));
    }

    #[test]
    fn tampered_tld_zone_fails_below_the_ds() {
        let h = build_hierarchy(10);
        let (tld, zone) = h.tld_zones.iter().next().unwrap();
        let mut tampered = zone.clone();
        let mut evil = RrSet::new(tld.child("www").unwrap(), RType::A, 60);
        evil.push(60, RData::A(std::net::Ipv4Addr::new(6, 6, 6, 6)));
        tampered.insert_rrset(evil).unwrap();
        assert!(matches!(
            validate_chain(&h.root_zone, &h.root_key, &tampered, 100),
            Err(ChainError::TldZone(_))
        ));
    }

    #[test]
    fn swapped_tld_key_fails_at_the_ds() {
        // A TLD zone re-signed with a different key: the root's DS no longer
        // matches, so the chain breaks exactly at the delegation.
        let h = build_hierarchy(10);
        let (tld, zone) = h.tld_zones.iter().next().unwrap();
        let unsigned = {
            // Strip DNSSEC records back out.
            let mut z = Zone::new(tld.clone());
            for set in zone.rrsets() {
                if set.rtype != RType::RRSIG && set.rtype != RType::DNSKEY {
                    z.insert_rrset(set.clone()).unwrap();
                }
            }
            z
        };
        let other_key = ZoneKey::generate(tld.clone(), false, 0xfeed);
        let resigned = sign::sign_zone(&unsigned, &other_key, 0, 1_000_000);
        assert!(matches!(
            validate_chain(&h.root_zone, &h.root_key, &resigned, 100),
            Err(ChainError::DsMismatch(_))
        ));
    }

    #[test]
    fn unsigned_delegation_reports_no_ds() {
        let h = build_hierarchy(10);
        let (_, zone) = h.tld_zones.iter().next().unwrap();
        let mut root_without_ds = h.root_zone.clone();
        root_without_ds.remove_rrset(zone.origin(), RType::DS);
        // Removing the DS invalidates the root zone's own signature set for
        // that name only if we also dropped the RRSIG; validate_zone skips
        // RRSIGs without counterpart sets? It requires every non-RRSIG set
        // signed — DS is gone entirely, so the root still validates; the
        // chain then stops with NoDs.
        match validate_chain(&root_without_ds, &h.root_key, zone, 100) {
            Err(ChainError::NoDs(_)) | Err(ChainError::Root(_)) => {}
            other => panic!("expected NoDs/Root, got {other:?}"),
        }
    }

    #[test]
    fn ds_digest_is_stable_and_key_specific() {
        let tld = Name::parse("shop").unwrap();
        let k1 = ZoneKey::generate(tld.clone(), false, 1);
        let k2 = ZoneKey::generate(tld.clone(), false, 2);
        assert_eq!(ds_digest(&tld, &k1.dnskey()), ds_digest(&tld, &k1.dnskey()));
        assert_ne!(ds_digest(&tld, &k1.dnskey()), ds_digest(&tld, &k2.dnskey()));
    }

    #[test]
    fn expired_signatures_fail_the_chain() {
        let root = rootzone::build(&RootZoneConfig::small(8));
        let tlds: Vec<Zone> = root.tlds().into_iter().take(1).map(|t| rootless_server_stub(&t, 0)).collect();
        let h = sign_hierarchy(&root, tlds, 0x42, 0, 50);
        let (_, zone) = h.tld_zones.iter().next().unwrap();
        assert!(validate_chain(&h.root_zone, &h.root_key, zone, 100).is_err());
        validate_chain(&h.root_zone, &h.root_key, zone, 25).unwrap();
    }
}
