//! RRset signing and validation (RFC 4034/4035 workflow over the simulated
//! algorithm) plus whole-zone signing.

use rootless_proto::name::Name;
use rootless_proto::rr::{RData, RType, Record, Rrsig};
use rootless_zone::rrset::RrSet;
use rootless_zone::zone::Zone;

use crate::keys::{ZoneKey, SIM_ALGORITHM};

/// Validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnssecError {
    /// No RRSIG covering the RRset.
    MissingSignature(String),
    /// Signature bytes did not verify.
    BadSignature(String),
    /// Signature validity window excludes `now`.
    Expired {
        /// The RRset whose signature expired.
        what: String,
        /// Expiration time (seconds).
        expiration: u32,
        /// Validation time (seconds).
        now: u32,
    },
    /// Signature is not yet valid.
    NotYetValid(String),
    /// Signer/algorithm/key-tag fields do not match the key.
    KeyMismatch(String),
    /// Zone is missing its DNSKEY RRset.
    MissingDnskey,
    /// ZONEMD digest mismatch.
    ZonemdMismatch,
    /// ZONEMD record missing.
    MissingZonemd,
}

impl std::fmt::Display for DnssecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnssecError::MissingSignature(w) => write!(f, "no RRSIG for {w}"),
            DnssecError::BadSignature(w) => write!(f, "bad signature on {w}"),
            DnssecError::Expired { what, expiration, now } => {
                write!(f, "signature on {what} expired at {expiration}, now {now}")
            }
            DnssecError::NotYetValid(w) => write!(f, "signature on {w} not yet valid"),
            DnssecError::KeyMismatch(w) => write!(f, "signature key fields mismatch on {w}"),
            DnssecError::MissingDnskey => write!(f, "zone has no DNSKEY RRset"),
            DnssecError::ZonemdMismatch => write!(f, "ZONEMD digest mismatch"),
            DnssecError::MissingZonemd => write!(f, "zone has no ZONEMD record"),
        }
    }
}

impl std::error::Error for DnssecError {}

/// The canonical signing buffer for an RRset (RFC 4034 §3.1.8.1): the RRSIG
/// RDATA with the signature field empty, followed by the RRset in canonical
/// form (owner lowercased, RDATAs sorted, TTL = original TTL).
pub fn signing_buffer(sig: &Rrsig, set: &RrSet) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&sig.type_covered.to_u16().to_be_bytes());
    buf.push(sig.algorithm);
    buf.push(sig.labels);
    buf.extend_from_slice(&sig.original_ttl.to_be_bytes());
    buf.extend_from_slice(&sig.expiration.to_be_bytes());
    buf.extend_from_slice(&sig.inception.to_be_bytes());
    buf.extend_from_slice(&sig.key_tag.to_be_bytes());
    buf.extend_from_slice(&sig.signer.canonical_wire());

    let canon = set.canonicalized();
    let owner = set.name.canonical_wire();
    for rdata in canon.rdatas() {
        buf.extend_from_slice(&owner);
        buf.extend_from_slice(&set.rtype.to_u16().to_be_bytes());
        buf.extend_from_slice(&1u16.to_be_bytes()); // class IN
        buf.extend_from_slice(&sig.original_ttl.to_be_bytes());
        let rd = rdata.canonical_bytes();
        buf.extend_from_slice(&(rd.len() as u16).to_be_bytes());
        buf.extend_from_slice(&rd);
    }
    buf
}

/// Signs one RRset, returning the RRSIG record.
pub fn sign_rrset(key: &ZoneKey, set: &RrSet, inception: u32, expiration: u32) -> Record {
    let mut sig = Rrsig {
        type_covered: set.rtype,
        algorithm: SIM_ALGORITHM,
        labels: set.name.label_count() as u8,
        original_ttl: set.ttl,
        expiration,
        inception,
        key_tag: key.key_tag(),
        signer: key.zone.clone(),
        signature: Vec::new(),
    };
    let buf = signing_buffer(&sig, set);
    sig.signature = key.sign_bytes(&buf);
    Record::new(set.name.clone(), set.ttl, RData::Rrsig(sig))
}

/// Verifies one RRSIG over one RRset at validation time `now`.
pub fn verify_rrset(key: &ZoneKey, set: &RrSet, sig: &Rrsig, now: u32) -> Result<(), DnssecError> {
    let what = format!("{} {}", set.name, set.rtype);
    if sig.algorithm != SIM_ALGORITHM || sig.signer != key.zone || sig.key_tag != key.key_tag() {
        return Err(DnssecError::KeyMismatch(what));
    }
    if sig.type_covered != set.rtype {
        return Err(DnssecError::KeyMismatch(what));
    }
    if now > sig.expiration {
        return Err(DnssecError::Expired { what, expiration: sig.expiration, now });
    }
    if now < sig.inception {
        return Err(DnssecError::NotYetValid(what));
    }
    let mut unsigned = sig.clone();
    unsigned.signature = Vec::new();
    let buf = signing_buffer(&unsigned, set);
    if key.verify_bytes(&buf, &sig.signature) {
        Ok(())
    } else {
        Err(DnssecError::BadSignature(what))
    }
}

/// Signs every RRset in `zone` (skipping RRSIGs themselves), adds the DNSKEY
/// RRset and its signature, and returns the signed zone.
///
/// This is the per-RRset model; [`crate::zonemd`] provides the paper's
/// "sign the entire root zone file ... validated quickly" optimization.
pub fn sign_zone(zone: &Zone, key: &ZoneKey, inception: u32, expiration: u32) -> Zone {
    let mut signed = zone.clone();
    // DNSKEY at the apex first, so it gets signed below.
    let dnskey_ttl = 172_800;
    signed.insert(key.dnskey_record(dnskey_ttl)).expect("dnskey in zone");
    let sets: Vec<RrSet> = signed
        .rrsets()
        .filter(|s| s.rtype != RType::RRSIG)
        .cloned()
        .collect();
    for set in sets {
        let sig = sign_rrset(key, &set, inception, expiration);
        signed.insert(sig).expect("rrsig in zone");
    }
    signed
}

/// Validates every non-RRSIG RRset of a signed zone against `key` at `now`.
/// Returns the number of RRsets verified.
pub fn validate_zone(zone: &Zone, key: &ZoneKey, now: u32) -> Result<usize, DnssecError> {
    if zone.get(zone.origin(), RType::DNSKEY).is_none() {
        return Err(DnssecError::MissingDnskey);
    }
    let mut verified = 0;
    for set in zone.rrsets().filter(|s| s.rtype != RType::RRSIG) {
        let sigs = zone
            .get(&set.name, RType::RRSIG)
            .ok_or_else(|| DnssecError::MissingSignature(format!("{} {}", set.name, set.rtype)))?;
        let covering: Vec<&Rrsig> = sigs
            .rdatas()
            .iter()
            .filter_map(|rd| match rd {
                RData::Rrsig(s) if s.type_covered == set.rtype => Some(s),
                _ => None,
            })
            .collect();
        if covering.is_empty() {
            return Err(DnssecError::MissingSignature(format!("{} {}", set.name, set.rtype)));
        }
        let mut ok = false;
        let mut last_err = None;
        for sig in covering {
            match verify_rrset(key, set, sig, now) {
                Ok(()) => {
                    ok = true;
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        if !ok {
            return Err(last_err.expect("at least one covering signature"));
        }
        verified += 1;
    }
    Ok(verified)
}

/// Finds the RRSIG covering `rtype` at `name` in a zone, if any.
pub fn find_signature<'a>(zone: &'a Zone, name: &Name, rtype: RType) -> Option<&'a Rrsig> {
    zone.get(name, RType::RRSIG).and_then(|sigs| {
        sigs.rdatas().iter().find_map(|rd| match rd {
            RData::Rrsig(s) if s.type_covered == rtype => Some(s),
            _ => None,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rootless_zone::rootzone::{self, RootZoneConfig};

    fn key() -> ZoneKey {
        ZoneKey::generate(Name::root(), true, 7)
    }

    fn sample_set() -> RrSet {
        let mut set = RrSet::new(Name::parse("com").unwrap(), RType::NS, 172_800);
        set.push(172_800, RData::Ns(Name::parse("a.gtld-servers.net").unwrap()));
        set.push(172_800, RData::Ns(Name::parse("b.gtld-servers.net").unwrap()));
        set
    }

    #[test]
    fn sign_and_verify_rrset() {
        let k = key();
        let set = sample_set();
        let sig_record = sign_rrset(&k, &set, 100, 10_000);
        let RData::Rrsig(sig) = &sig_record.rdata else { panic!() };
        assert!(verify_rrset(&k, &set, sig, 5_000).is_ok());
    }

    #[test]
    fn signature_is_case_insensitive_on_owner() {
        // Canonical form lowercases, so a case-twiddled copy still verifies.
        let k = key();
        let set = sample_set();
        let sig_record = sign_rrset(&k, &set, 0, 10_000);
        let RData::Rrsig(sig) = &sig_record.rdata else { panic!() };
        let mut twiddled = RrSet::new(Name::parse("COM").unwrap(), RType::NS, 172_800);
        twiddled.push(172_800, RData::Ns(Name::parse("A.GTLD-SERVERS.NET").unwrap()));
        twiddled.push(172_800, RData::Ns(Name::parse("B.gtld-servers.net").unwrap()));
        assert!(verify_rrset(&k, &twiddled, sig, 5).is_ok());
    }

    #[test]
    fn signature_order_independent() {
        let k = key();
        let set = sample_set();
        let sig_record = sign_rrset(&k, &set, 0, 10_000);
        let RData::Rrsig(sig) = &sig_record.rdata else { panic!() };
        // Same rdatas inserted in the other order.
        let mut other = RrSet::new(Name::parse("com").unwrap(), RType::NS, 172_800);
        other.push(172_800, RData::Ns(Name::parse("b.gtld-servers.net").unwrap()));
        other.push(172_800, RData::Ns(Name::parse("a.gtld-servers.net").unwrap()));
        assert!(verify_rrset(&k, &other, sig, 5).is_ok());
    }

    #[test]
    fn tampering_detected() {
        let k = key();
        let set = sample_set();
        let sig_record = sign_rrset(&k, &set, 0, 10_000);
        let RData::Rrsig(sig) = &sig_record.rdata else { panic!() };
        let mut tampered = set.clone();
        tampered.push(172_800, RData::Ns(Name::parse("evil.example").unwrap()));
        assert!(matches!(
            verify_rrset(&k, &tampered, sig, 5),
            Err(DnssecError::BadSignature(_))
        ));
    }

    #[test]
    fn expiration_enforced() {
        let k = key();
        let set = sample_set();
        let sig_record = sign_rrset(&k, &set, 100, 200);
        let RData::Rrsig(sig) = &sig_record.rdata else { panic!() };
        assert!(verify_rrset(&k, &set, sig, 150).is_ok());
        assert!(matches!(verify_rrset(&k, &set, sig, 201), Err(DnssecError::Expired { .. })));
        assert!(matches!(verify_rrset(&k, &set, sig, 50), Err(DnssecError::NotYetValid(_))));
    }

    #[test]
    fn wrong_key_detected() {
        let k = key();
        let other = ZoneKey::generate(Name::root(), true, 8);
        let set = sample_set();
        let sig_record = sign_rrset(&k, &set, 0, 10_000);
        let RData::Rrsig(sig) = &sig_record.rdata else { panic!() };
        // Different key tag → KeyMismatch.
        assert!(matches!(
            verify_rrset(&other, &set, sig, 5),
            Err(DnssecError::KeyMismatch(_))
        ));
    }

    #[test]
    fn sign_zone_validates() {
        let zone = rootzone::build(&RootZoneConfig::small(40));
        let k = key();
        let signed = sign_zone(&zone, &k, 0, 1_000_000);
        let verified = validate_zone(&signed, &k, 500).unwrap();
        assert!(verified > 40, "verified {verified} RRsets");
        // DNSKEY present and signed.
        assert!(signed.get(&Name::root(), RType::DNSKEY).is_some());
        assert!(find_signature(&signed, &Name::root(), RType::DNSKEY).is_some());
    }

    #[test]
    fn validate_zone_rejects_tampered_zone() {
        let zone = rootzone::build(&RootZoneConfig::small(40));
        let k = key();
        let mut signed = sign_zone(&zone, &k, 0, 1_000_000);
        // Attacker swaps a TLD's nameserver without re-signing.
        let victim = zone.tlds()[7].clone();
        let mut evil = RrSet::new(victim.clone(), RType::NS, 172_800);
        evil.push(172_800, RData::Ns(Name::parse("evil.attacker.example").unwrap()));
        signed.insert_rrset(evil).unwrap();
        assert!(validate_zone(&signed, &k, 500).is_err());
    }

    #[test]
    fn validate_zone_rejects_expired() {
        let zone = rootzone::build(&RootZoneConfig::small(10));
        let k = key();
        let signed = sign_zone(&zone, &k, 0, 100);
        assert!(matches!(validate_zone(&signed, &k, 101), Err(DnssecError::Expired { .. })));
    }

    #[test]
    fn unsigned_zone_fails_validation() {
        let zone = rootzone::build(&RootZoneConfig::small(10));
        let k = key();
        assert_eq!(validate_zone(&zone, &k, 5), Err(DnssecError::MissingDnskey));
    }
}
