//! Whole-zone digests and the paper's "sign the whole file" optimization.
//!
//! §3: *"As an optimization the entire root zone file could be
//! cryptographically signed such that it can be validated quickly rather
//! than validating each component individually."* This is the ZONEMD idea
//! (later standardized as RFC 8976): a digest over the zone's canonical
//! records placed in an apex ZONEMD record, which a single RRSIG then
//! covers. Verification is one hash pass + one signature check, versus one
//! check per RRset (benched in `resolve_modes`/`zone_ops`).

use rootless_proto::name::Name;
use rootless_proto::rr::{RData, RType, Record, Zonemd};
use rootless_proto::wire::Encoder;
use rootless_util::sha256::Sha256;
use rootless_zone::rrset::RrSet;
use rootless_zone::zone::Zone;

use crate::keys::{ZoneKey, ZONEMD_HASH_ALG};
use crate::sign::{self, DnssecError};

/// ZONEMD scheme number: 1 = SIMPLE (hash all records in canonical order).
pub const SCHEME_SIMPLE: u8 = 1;

/// The exact bytes one RRset contributes to the SIMPLE-scheme digest: its
/// records in canonical wire form, honoring the RFC 8976 §3.4.1 exclusions
/// (the apex ZONEMD set contributes nothing, and apex RRSIG rdatas covering
/// ZONEMD are skipped). Returns `None` for the fully-excluded apex ZONEMD
/// set. [`crate::incremental`] hashes these per-set to maintain its digest
/// tree, so the leaves agree byte-for-byte with the flat [`digest`] stream.
pub fn leaf_bytes(origin: &Name, set: &RrSet) -> Option<Vec<u8>> {
    if set.name == *origin && set.rtype == RType::ZONEMD {
        return None;
    }
    let canon = set.canonicalized();
    let mut out = Vec::new();
    for rdata in canon.rdatas() {
        if set.name == *origin && set.rtype == RType::RRSIG {
            if let RData::Rrsig(sig) = rdata {
                if sig.type_covered == RType::ZONEMD {
                    continue;
                }
            }
        }
        let mut enc = Encoder::new();
        enc.bytes(&set.name.canonical_wire());
        enc.u16(set.rtype.to_u16());
        enc.u16(1); // class IN
        enc.u32(set.ttl);
        let rd = rdata.canonical_bytes();
        enc.u16(rd.len() as u16);
        enc.bytes(&rd);
        out.extend_from_slice(&enc.finish());
    }
    Some(out)
}

/// Computes the SIMPLE-scheme digest over the zone: every record in
/// canonical order, in canonical wire form, excluding the apex ZONEMD record
/// itself and any RRSIG covering ZONEMD (RFC 8976 §3.4.1).
pub fn digest(zone: &Zone) -> [u8; 32] {
    let mut h = Sha256::new();
    for set in zone.rrsets() {
        if let Some(bytes) = leaf_bytes(zone.origin(), set) {
            h.update(&bytes);
        }
    }
    h.finish()
}

/// Adds a ZONEMD record (and, if `key` is given, an RRSIG covering it) to a
/// copy of the zone. The digest covers the zone *with* whatever signatures it
/// already carries, mirroring real root-zone practice.
pub fn attach(zone: &Zone, key: Option<&ZoneKey>, inception: u32, expiration: u32) -> Zone {
    let mut out = zone.clone();
    out.remove_rrset(&out.origin().clone(), RType::ZONEMD);
    let d = digest(&out);
    let record = Record::new(
        out.origin().clone(),
        86_400,
        RData::Zonemd(Zonemd {
            serial: out.serial(),
            scheme: SCHEME_SIMPLE,
            hash_algorithm: ZONEMD_HASH_ALG,
            digest: d.to_vec(),
        }),
    );
    out.insert(record).expect("zonemd at apex");
    if let Some(key) = key {
        let set = out.get(out.origin(), RType::ZONEMD).expect("just inserted").clone();
        let sig = sign::sign_rrset(key, &set, inception, expiration);
        out.insert(sig).expect("rrsig at apex");
    }
    out
}

/// Verifies the apex ZONEMD digest, and its signature when `key` is given.
/// This is the fast whole-file validation path a recursive resolver runs
/// after downloading the root zone.
pub fn verify(zone: &Zone, key: Option<(&ZoneKey, u32)>) -> Result<(), DnssecError> {
    let apex = zone.origin().clone();
    let set = zone.get(&apex, RType::ZONEMD).ok_or(DnssecError::MissingZonemd)?;
    let RData::Zonemd(z) = &set.rdatas()[0] else {
        return Err(DnssecError::MissingZonemd);
    };
    if z.serial != zone.serial() || z.scheme != SCHEME_SIMPLE || z.hash_algorithm != ZONEMD_HASH_ALG {
        return Err(DnssecError::ZonemdMismatch);
    }
    let d = digest(zone);
    if z.digest != d.to_vec() {
        return Err(DnssecError::ZonemdMismatch);
    }
    if let Some((key, now)) = key {
        let sig = sign::find_signature(zone, &apex, RType::ZONEMD)
            .ok_or_else(|| DnssecError::MissingSignature("apex ZONEMD".into()))?;
        sign::verify_rrset(key, set, sig, now)?;
    }
    Ok(())
}

/// A detached whole-file signature over serialized zone bytes — the simplest
/// realization of the §3 optimization for non-DNS distribution channels
/// (HTTP mirror, rsync, p2p): `sig = HMAC(key, bytes)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetachedSignature {
    /// Serial the signature covers.
    pub serial: u32,
    /// HMAC bytes.
    pub signature: Vec<u8>,
}

impl DetachedSignature {
    /// Signs serialized zone-file bytes.
    pub fn create(key: &ZoneKey, serial: u32, file_bytes: &[u8]) -> Self {
        let mut data = serial.to_be_bytes().to_vec();
        data.extend_from_slice(file_bytes);
        DetachedSignature { serial, signature: key.sign_bytes(&data) }
    }

    /// Verifies serialized zone-file bytes.
    pub fn verify(&self, key: &ZoneKey, file_bytes: &[u8]) -> bool {
        let mut data = self.serial.to_be_bytes().to_vec();
        data.extend_from_slice(file_bytes);
        key.verify_bytes(&data, &self.signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rootless_proto::name::Name;
    use rootless_zone::rootzone::{self, RootZoneConfig};

    fn key() -> ZoneKey {
        ZoneKey::generate(Name::root(), true, 11)
    }

    #[test]
    fn digest_is_deterministic_and_content_sensitive() {
        let a = rootzone::build(&RootZoneConfig::small(30));
        let b = rootzone::build(&RootZoneConfig::small(30));
        assert_eq!(digest(&a), digest(&b));
        let c = rootzone::build(&RootZoneConfig::small(31));
        assert_ne!(digest(&a), digest(&c));
    }

    #[test]
    fn attach_then_verify() {
        let zone = rootzone::build(&RootZoneConfig::small(30));
        let signed = attach(&zone, Some(&key()), 0, 1_000_000);
        verify(&signed, Some((&key(), 500))).unwrap();
        // Without key checking too.
        verify(&signed, None).unwrap();
    }

    #[test]
    fn verify_detects_post_digest_tampering() {
        let zone = rootzone::build(&RootZoneConfig::small(30));
        let mut signed = attach(&zone, Some(&key()), 0, 1_000_000);
        let victim = zone.tlds()[3].clone();
        let mut evil = rootless_zone::rrset::RrSet::new(victim, RType::NS, 172_800);
        evil.push(172_800, RData::Ns(Name::parse("evil.example").unwrap()));
        signed.insert_rrset(evil).unwrap();
        assert_eq!(verify(&signed, None), Err(DnssecError::ZonemdMismatch));
    }

    #[test]
    fn verify_detects_serial_mismatch() {
        let zone = rootzone::build(&RootZoneConfig::small(10));
        let signed = attach(&zone, None, 0, 0);
        // Bump SOA serial without recomputing ZONEMD.
        let mut tampered = signed.clone();
        let mut soa = zone.soa().unwrap().clone();
        soa.serial += 1;
        let mut set = rootless_zone::rrset::RrSet::new(Name::root(), RType::SOA, 86_400);
        set.push(86_400, RData::Soa(soa));
        tampered.insert_rrset(set).unwrap();
        assert!(verify(&tampered, None).is_err());
    }

    #[test]
    fn missing_zonemd_detected() {
        let zone = rootzone::build(&RootZoneConfig::small(10));
        assert_eq!(verify(&zone, None), Err(DnssecError::MissingZonemd));
    }

    #[test]
    fn zonemd_over_rrset_signed_zone() {
        // Per-RRset signatures + ZONEMD on top, like the real root zone.
        let zone = rootzone::build(&RootZoneConfig::small(20));
        let rrset_signed = crate::sign::sign_zone(&zone, &key(), 0, 1_000_000);
        let full = attach(&rrset_signed, Some(&key()), 0, 1_000_000);
        verify(&full, Some((&key(), 10))).unwrap();
    }

    #[test]
    fn attach_is_idempotent_on_redigest() {
        let zone = rootzone::build(&RootZoneConfig::small(15));
        let once = attach(&zone, None, 0, 0);
        let twice = attach(&once, None, 0, 0);
        assert_eq!(once, twice);
    }

    #[test]
    fn detached_signature_roundtrip() {
        let k = key();
        let bytes = b"serialized zone file contents";
        let sig = DetachedSignature::create(&k, 42, bytes);
        assert!(sig.verify(&k, bytes));
        assert!(!sig.verify(&k, b"tampered contents"));
        let wrong_serial = DetachedSignature { serial: 43, ..sig.clone() };
        assert!(!wrong_serial.verify(&k, bytes));
    }
}
