//! # rootless-dnssec
//!
//! Simulated DNSSEC for the `rootless` workspace: the machinery that lets a
//! recursive resolver verify a downloaded root zone instead of trusting the
//! path it arrived over (§3 of the paper: "Cryptographically Sign Root
//! Zone").
//!
//! The workflow is faithful to RFC 4033–4035 / RFC 8976 — canonical RRset
//! form, RRSIG/DNSKEY/DS records, key tags, validity windows, NSEC denial,
//! whole-zone digests — but the hard cryptography is HMAC-SHA256 under
//! algorithm number 250 because no public-key crates are in the approved
//! offline set. See [`keys`] and DESIGN.md §2 for the substitution argument.
//!
//! * [`keys`] — zone keys, DNSKEY/DS records, key tags.
//! * [`sign`] — per-RRset signing and full-zone validation.
//! * [`zonemd`] — whole-zone digests (the §3 "sign the entire file"
//!   optimization) and detached file signatures for non-DNS channels.
//! * [`nsec`] — authenticated denial chains for the root's NXDOMAIN-heavy
//!   workload.
//! * [`chain`] — full chains of trust: anchor → root DNSKEY → TLD DS → TLD
//!   DNSKEY → TLD data.
//! * [`incremental`] — cached validation state re-checked per [`rootless_zone::diff::ZoneDiff`],
//!   so a daily update costs O(touched) instead of O(zone).

#![warn(missing_docs)]

pub mod chain;
pub mod incremental;
pub mod keys;
pub mod nsec;
pub mod sign;
pub mod zonemd;

pub use keys::ZoneKey;
pub use sign::{sign_zone, validate_zone, DnssecError};
