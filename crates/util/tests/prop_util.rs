//! Property tests for the util crate: compression, checksums, varints,
//! stats and calendar arithmetic.

use proptest::prelude::*;
use rootless_util::rolling::{weak_checksum, Roller};
use rootless_util::time::Date;
use rootless_util::{hex, lzss, varint};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lzss_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let compressed = lzss::compress(&data);
        prop_assert_eq!(lzss::decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrips_repetitive_text(
        unit in proptest::collection::vec(any::<u8>(), 1..64),
        repeats in 1usize..200,
    ) {
        let mut data = Vec::new();
        for _ in 0..repeats {
            data.extend_from_slice(&unit);
        }
        let compressed = lzss::compress(&data);
        let data_len = data.len();
        prop_assert_eq!(lzss::decompress(&compressed).unwrap(), data);
        // Repetitive data must compress once it spans several units.
        if repeats > 20 && unit.len() >= 8 {
            prop_assert!(compressed.len() < data_len);
        }
    }

    #[test]
    fn lzss_decompress_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let _ = lzss::decompress(&bytes);
    }

    #[test]
    fn rolling_checksum_matches_recompute(
        data in proptest::collection::vec(any::<u8>(), 2..2048),
        window in 1usize..128,
    ) {
        let window = window.min(data.len() - 1);
        let mut roller = Roller::new(&data[..window]);
        for start in 1..(data.len() - window) {
            roller.roll(data[start - 1], data[start + window - 1]);
            prop_assert_eq!(roller.digest(), weak_checksum(&data[start..start + window]));
        }
    }

    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, v);
        let (got, used) = varint::read_u64(&buf).unwrap();
        prop_assert_eq!(got, v);
        prop_assert_eq!(used, buf.len());
        prop_assert!(buf.len() <= 10);
    }

    #[test]
    fn varint_read_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..16)) {
        let _ = varint::read_u64(&bytes);
    }

    #[test]
    fn hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(hex::decode(&hex::encode(&data)).unwrap(), data);
    }

    #[test]
    fn date_epoch_roundtrip(days in -20_000i64..40_000) {
        let date = Date::from_epoch_days(days);
        prop_assert_eq!(date.to_epoch_days(), days);
        prop_assert!((1..=12).contains(&date.month));
        prop_assert!((1..=31).contains(&date.day));
    }

    #[test]
    fn date_plus_days_is_additive(start in 0i64..30_000, a in -500i64..500, b in -500i64..500) {
        let d = Date::from_epoch_days(start);
        prop_assert_eq!(d.plus_days(a).plus_days(b), d.plus_days(a + b));
    }

    #[test]
    fn running_stats_match_naive(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut r = rootless_util::stats::Running::new();
        for &x in &samples {
            r.push(x);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        prop_assert!((r.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert_eq!(r.count(), samples.len() as u64);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(r.min(), min);
    }

    #[test]
    fn percentiles_bounded_by_extremes(samples in proptest::collection::vec(-1e6f64..1e6, 1..200), q in 0.0f64..1.0) {
        let p = rootless_util::stats::percentile(&samples, q);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= min - 1e-9 && p <= max + 1e-9);
    }
}

#[test]
fn sha256_incremental_equals_oneshot_property() {
    // Deterministic sweep over chunkings (proptest overkill for this).
    use rootless_util::sha256::{sha256, Sha256};
    let data: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
    let expect = sha256(&data);
    for chunk in [1usize, 3, 63, 64, 65, 1000] {
        let mut h = Sha256::new();
        for c in data.chunks(chunk) {
            h.update(c);
        }
        assert_eq!(h.finish(), expect, "chunk size {chunk}");
    }
}
