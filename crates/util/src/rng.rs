//! Deterministic pseudo-random number generation for simulations.
//!
//! Every experiment in this repository must be reproducible from a seed, and
//! results must not shift when the `rand` crate revs its default generator.
//! `DetRng` is therefore a self-contained xoshiro256** implementation with
//! the distribution helpers the workload generators need (uniform ranges,
//! Bernoulli, exponential, Zipf, shuffles, weighted choice).

/// The splitmix64 golden-ratio increment.
const SPLITMIX_GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// The splitmix64 output (finalizer) function: a fixed bijective avalanche
/// over one 64-bit word. This is the single definition of the mixer — the
/// seed-derivation helpers below, [`DetRng::seed_from_u64`], and the
/// scheduler benchmarks all route through it (the repo used to carry four
/// inlined copies that could drift independently).
pub fn splitmix64_mix(z: u64) -> u64 {
    let mut z = z;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One step of the splitmix64 generator: advances `state` by the golden
/// constant and returns the mixed output. Seeding a `DetRng` is four calls
/// to this with `state = seed`.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(SPLITMIX_GOLDEN);
    splitmix64_mix(*state)
}

/// Derives an independent substream seed from a base seed and a stream
/// index (splitmix64 over `base ^ golden·(index+1)`). Two distinct indices
/// give statistically unrelated streams, and the result is a pure function
/// of `(base, index)` — the property the sharded DITL generator and the
/// parallel sweep executor both build their determinism arguments on.
pub fn substream_seed(base: u64, index: u64) -> u64 {
    splitmix64_mix(base ^ index.wrapping_add(1).wrapping_mul(SPLITMIX_GOLDEN))
}

/// xoshiro256** — a small, fast, high-quality PRNG (Blackman & Vigna).
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Seeds the generator from a single `u64` via SplitMix64, which is the
    /// recommended seeding procedure for the xoshiro family.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || splitmix64(&mut sm);
        DetRng { s: [next(), next(), next(), next()] }
    }

    /// The raw xoshiro256** state words, in order. Canonical-state digests
    /// include these so that two interleavings are only merged when their
    /// future randomness agrees too.
    pub fn state_words(&self) -> [u64; 4] {
        self.s
    }

    /// Derives an independent child generator; used to give each simulated
    /// resolver / experiment arm its own stream without cross-correlation.
    pub fn fork(&mut self, label: u64) -> Self {
        let a = self.next_u64();
        Self::seed_from_u64(a ^ label.wrapping_mul(0x9e3779b97f4a7c15))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 significant bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. Panics if `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `usize` index into a slice of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed value with mean `mean`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Pareto-distributed value with scale `xm` and shape `alpha`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        xm / u.powf(1.0 / alpha)
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks an index according to non-negative `weights`. Panics if all
    /// weights are zero or the slice is empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index with zero total weight");
        let mut target = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }
}

/// Zipf(s) sampler over ranks `0..n` using a precomputed CDF.
///
/// TLD popularity at the roots is heavy-tailed: a handful of TLDs (`com`,
/// `net`, ...) dominate queries while most of the 1.5K TLDs are rare. The
/// DITL workload generator samples the queried TLD from this distribution.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s` (s=1 is classic
    /// Zipf). Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks in the support.
    pub fn support(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a rank in `0..n`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.next_f64();
        match self.cdf.binary_search_by(|probe| probe.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substream_seed_outputs_are_pinned() {
        // Golden values. Every sharded generator and parallel sweep derives
        // its per-stream seeds from this function; if any of these change,
        // previously recorded experiment reports stop reproducing.
        assert_eq!(substream_seed(0, 0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(substream_seed(0, 1), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(substream_seed(0xb0075, 0), 0x861b_b821_c3cb_3dd6);
        assert_eq!(substream_seed(0xb0075, 1), 0xf0ff_4bdb_c804_bda5);
        assert_eq!(substream_seed(0xdead_beef, 7), 0x5ee8_3a5d_75ca_7bcd);
        // substream_seed(0, 0) is exactly the first output of the reference
        // splitmix64 stream from seed 0 (state already advanced by golden).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), substream_seed(0, 0));
    }

    #[test]
    fn seeding_matches_reference_splitmix_stream() {
        let mut sm = 42u64;
        let expect = [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        assert_eq!(DetRng::seed_from_u64(42).state_words(), expect);
    }

    #[test]
    fn substream_seeds_differ_and_are_stable() {
        let a = substream_seed(0xb0075, 0);
        let b = substream_seed(0xb0075, 1);
        assert_ne!(a, b);
        assert_eq!(a, substream_seed(0xb0075, 0), "pure function of (base, index)");
        assert_ne!(substream_seed(0xb0075, 0), substream_seed(0xb0076, 0));
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::seed_from_u64(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = DetRng::seed_from_u64(9);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.below(10) as usize] += 1;
        }
        for c in counts {
            assert!((8_500..11_500).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = DetRng::seed_from_u64(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            match rng.range_inclusive(5, 8) {
                5 => saw_lo = true,
                8 => saw_hi = true,
                6 | 7 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::seed_from_u64(11);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = DetRng::seed_from_u64(13);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(4.0)).sum();
        let mean = sum / n as f64;
        assert!((3.8..4.2).contains(&mean), "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input ordered");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = DetRng::seed_from_u64(17);
        let weights = [0.0, 9.0, 1.0];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > counts[2] * 5);
    }

    #[test]
    fn zipf_rank0_dominates() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = DetRng::seed_from_u64(19);
        let mut rank0 = 0;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) == 0 {
                rank0 += 1;
            }
        }
        // For Zipf(1.0) over 1000 ranks, p(0) ≈ 1/H_1000 ≈ 0.1337.
        let frac = rank0 as f64 / n as f64;
        assert!((0.11..0.16).contains(&frac), "rank0 fraction {frac}");
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = DetRng::seed_from_u64(23);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let matches = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(matches, 0);
    }
}
