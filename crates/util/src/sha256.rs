//! SHA-256 and HMAC-SHA256 implemented from scratch (FIPS 180-4 / RFC 2104).
//!
//! The workspace needs a cryptographic hash for three jobs:
//!
//! * the simulated DNSSEC layer in `rootless-dnssec` (RRSIG/DS stand-ins and
//!   ZONEMD-style whole-zone digests),
//! * the strong block hash of the rsync algorithm in `rootless-delta`,
//! * content addressing of zone snapshots in `rootless-core`.
//!
//! No cryptography crates are in the approved offline set, so this is a plain,
//! well-tested implementation of the standard. It is not hardened against
//! side channels; nothing in this repository handles real secrets.

/// Digest size in bytes.
pub const DIGEST_LEN: usize = 32;

/// Internal block size in bytes (needed by HMAC).
pub const BLOCK_LEN: usize = 64;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use rootless_util::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(
///     rootless_util::hex::encode(&h.finish()),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes processed so far, including those buffered.
    len: u64,
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha256 { state: H0, len: 0, buf: [0; BLOCK_LEN], buf_len: 0 }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(BLOCK_LEN - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= BLOCK_LEN {
            let (block, tail) = rest.split_at(BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finalizes the hash and returns the 32-byte digest.
    pub fn finish(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manual write of the length; bypass update's length bookkeeping by
        // compressing directly.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([block[4 * i], block[4 * i + 1], block[4 * i + 2], block[4 * i + 3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finish()
}

/// HMAC-SHA256 per RFC 2104.
///
/// Used by `rootless-dnssec` as the signature primitive standing in for the
/// public-key algorithms real DNSSEC uses (substitution documented in
/// DESIGN.md §2).
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut k = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        k[..DIGEST_LEN].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finish();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finish()
}

/// Constant-shape digest comparison. (Not constant-time in the cryptographic
/// sense; the simulator does not need that property.)
pub fn digest_eq(a: &[u8; DIGEST_LEN], b: &[u8; DIGEST_LEN]) -> bool {
    a.iter().zip(b.iter()).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn hex_of(data: &[u8]) -> String {
        hex::encode(&sha256(data))
    }

    #[test]
    fn empty_vector() {
        assert_eq!(hex_of(b""), "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    }

    #[test]
    fn abc_vector() {
        assert_eq!(hex_of(b"abc"), "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            hex_of(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn quick_brown_fox() {
        assert_eq!(
            hex_of(b"The quick brown fox jumps over the lazy dog"),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hex_of(&data), "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
    }

    #[test]
    fn exact_block_boundaries() {
        // 55/56/64/119/120 bytes straddle all padding edge cases.
        for n in [55usize, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xa5u8; n];
            let one_shot = sha256(&data);
            let mut inc = Sha256::new();
            for chunk in data.chunks(7) {
                inc.update(chunk);
            }
            assert_eq!(one_shot, inc.finish(), "length {n}");
        }
    }

    #[test]
    fn incremental_matches_oneshot_for_any_split() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let expect = sha256(&data);
        for split in [0usize, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), expect, "split {split}");
        }
    }

    #[test]
    fn hmac_rfc_style_vector() {
        let mac = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
        assert_eq!(
            hex::encode(&mac),
            "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
        );
    }

    #[test]
    fn hmac_rfc4231_case1() {
        // RFC 4231 test case 1.
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex::encode(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_long_key_is_hashed_first() {
        // RFC 4231 test case 6: 131-byte key.
        let key = [0xaau8; 131];
        let mac = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hex::encode(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn digest_eq_detects_difference() {
        let a = sha256(b"x");
        let mut b = a;
        assert!(digest_eq(&a, &b));
        b[31] ^= 1;
        assert!(!digest_eq(&a, &b));
    }
}
