//! The rsync rolling checksum (Adler-32 variant from Tridgell's thesis).
//!
//! §5.2 of the paper proposes distributing root-zone *changes* with rsync
//! instead of shipping the whole file. `rootless-delta` implements the actual
//! algorithm; this module provides the weak rolling hash that lets the
//! sender slide a window over its new file one byte at a time in O(1).
//!
//! Definition (window `x[k .. k+len]`, modulus `M = 2^16`):
//!
//! ```text
//! a = Σ x[k+j]              mod M
//! b = Σ (len - j) · x[k+j]  mod M
//! digest = b << 16 | a
//! ```
//!
//! Sliding the window by one byte (dropping `out = x[k]`, adding
//! `inp = x[k+len]`) updates in O(1):
//!
//! ```text
//! a' = a - out + inp
//! b' = b - len·out + a'
//! ```

const MOD: u32 = 1 << 16;

/// Incremental rolling checksum over a fixed-length window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Roller {
    a: u32,
    b: u32,
    len: u32,
}

impl Roller {
    /// Computes the checksum of an initial window.
    pub fn new(window: &[u8]) -> Self {
        let mut a: u32 = 0;
        let mut b: u32 = 0;
        let len = window.len() as u32;
        for (i, &x) in window.iter().enumerate() {
            a = (a + x as u32) % MOD;
            b = (b + (len - i as u32) * x as u32) % MOD;
        }
        Roller { a, b, len }
    }

    /// Current 32-bit digest: `b << 16 | a`.
    pub fn digest(&self) -> u32 {
        (self.b << 16) | self.a
    }

    /// Window length this state was built for.
    pub fn window_len(&self) -> u32 {
        self.len
    }

    /// Slides the window one byte: removes `out` (the oldest byte) and
    /// appends `inp`.
    pub fn roll(&mut self, out: u8, inp: u8) {
        let out = out as u32;
        let inp = inp as u32;
        self.a = (self.a + MOD - out + inp) % MOD;
        // len * out ≤ 2^16 · 255 < 2^24, so no u32 overflow below.
        self.b = (self.b + self.a + MOD - (self.len * out) % MOD) % MOD;
    }
}

/// One-shot weak checksum of a block.
pub fn weak_checksum(block: &[u8]) -> u32 {
    Roller::new(block).digest()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_matches_recompute() {
        let data: Vec<u8> = (0..200u8).map(|i| i.wrapping_mul(37).wrapping_add(11)).collect();
        let w = 16;
        let mut roller = Roller::new(&data[..w]);
        assert_eq!(roller.digest(), weak_checksum(&data[..w]));
        for start in 1..(data.len() - w) {
            roller.roll(data[start - 1], data[start + w - 1]);
            assert_eq!(
                roller.digest(),
                weak_checksum(&data[start..start + w]),
                "window at {start}"
            );
        }
    }

    #[test]
    fn rolling_matches_recompute_random_bytes() {
        let mut rng = crate::rng::DetRng::seed_from_u64(99);
        let data: Vec<u8> = (0..5000).map(|_| rng.next_u64() as u8).collect();
        for w in [4usize, 64, 700] {
            let mut roller = Roller::new(&data[..w]);
            for start in 1..(data.len() - w) {
                roller.roll(data[start - 1], data[start + w - 1]);
                assert_eq!(roller.digest(), weak_checksum(&data[start..start + w]));
            }
        }
    }

    #[test]
    fn different_blocks_usually_differ() {
        let a = weak_checksum(b"the root zone file v1");
        let b = weak_checksum(b"the root zone file v2");
        assert_ne!(a, b);
    }

    #[test]
    fn empty_window() {
        assert_eq!(weak_checksum(&[]), 0);
    }

    #[test]
    fn single_byte_window() {
        let mut roller = Roller::new(&[7]);
        roller.roll(7, 9);
        assert_eq!(roller.digest(), weak_checksum(&[9]));
    }

    #[test]
    fn max_value_window_no_overflow() {
        let data = vec![0xffu8; 70_000];
        let w = 65_535;
        let mut roller = Roller::new(&data[..w]);
        for start in 1..(data.len() - w) {
            roller.roll(data[start - 1], data[start + w - 1]);
        }
        assert_eq!(roller.digest(), weak_checksum(&data[data.len() - w..]));
    }
}
