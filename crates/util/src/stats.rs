//! Small statistics toolkit used by the experiment harness: running moments,
//! percentiles, histograms and fixed-point formatting helpers.

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 { 0.0 } else { self.mean }
    }

    /// Sample standard deviation (0 for fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 { 0.0 } else { (self.m2 / (self.n - 1) as f64).sqrt() }
    }

    /// Smallest observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 { f64::NAN } else { self.min }
    }

    /// Largest observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 { f64::NAN } else { self.max }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + d * d * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Percentile of a sample using linear interpolation between closest ranks.
/// `q` in `[0, 1]`. Sorts a copy; for repeated queries use [`Percentiles`].
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    percentile_sorted(&v, q)
}

/// Percentile over an already-sorted slice.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// A batch of samples with cached sorting, for CDF/percentile extraction.
#[derive(Clone, Debug, Default)]
pub struct Percentiles {
    sorted: Vec<f64>,
}

impl Percentiles {
    /// Builds from raw samples.
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Percentiles { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Quantile `q` in `[0,1]`.
    pub fn q(&self, q: f64) -> f64 {
        percentile_sorted(&self.sorted, q)
    }

    /// Median shorthand.
    pub fn median(&self) -> f64 {
        self.q(0.5)
    }

    /// Evaluates the empirical CDF at `x` (fraction of samples ≤ x).
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Returns `(x, F(x))` pairs at `points` evenly spaced quantiles, suitable
    /// for plotting a CDF series.
    pub fn cdf_series(&self, points: usize) -> Vec<(f64, f64)> {
        (0..=points)
            .map(|i| {
                let q = i as f64 / points as f64;
                (self.q(q), q)
            })
            .collect()
    }
}

/// Fixed-bucket histogram over `[lo, hi)` with an overflow bucket.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    width: f64,
    buckets: Vec<u64>,
    overflow: u64,
    underflow: u64,
}

impl Histogram {
    /// Creates a histogram with `n` equal buckets spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(hi > lo && n > 0);
        Histogram { lo, width: (hi - lo) / n as f64, buckets: vec![0; n], overflow: 0, underflow: 0 }
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.buckets.len() {
            self.overflow += 1;
        } else {
            self.buckets[idx] += 1;
        }
    }

    /// Bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Count of observations above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count of observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.overflow + self.underflow
    }

    /// Lower edge of bucket `i`.
    pub fn edge(&self, i: usize) -> f64 {
        self.lo + self.width * i as f64
    }
}

/// Formats a count with thousands separators (`5700000000` → `"5,700,000,000"`).
pub fn group_digits(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    let first = s.len() % 3;
    for (i, c) in s.chars().enumerate() {
        if i != 0 && (i + 3 - first).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a fraction as a percentage with one decimal, paper-style (`0.61` →
/// `"61.0%"`).
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_moments() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is sqrt(32/7).
        assert!((r.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
    }

    #[test]
    fn running_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Running::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = Running::new();
        let mut b = Running::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.stddev() - whole.stddev()).abs() < 1e-9);
    }

    #[test]
    fn empty_running_is_sane() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.stddev(), 0.0);
        assert!(r.min().is_nan());
    }

    #[test]
    fn percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert!((percentile(&v, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn percentiles_cdf_monotone() {
        let p = Percentiles::new((0..1000).map(|i| i as f64).collect());
        assert!((p.cdf(499.0) - 0.5).abs() < 0.01);
        assert_eq!(p.cdf(-1.0), 0.0);
        assert_eq!(p.cdf(10_000.0), 1.0);
        let series = p.cdf_series(10);
        for w in series.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.0, 0.5, 5.0, 9.99, 10.0, -0.1] {
            h.push(x);
        }
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[5], 1);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 6);
        assert_eq!(h.edge(5), 5.0);
    }

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1000), "1,000");
        assert_eq!(group_digits(5_700_000_000), "5,700,000,000");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.61), "61.0%");
        assert_eq!(pct(0.005), "0.5%");
    }
}
