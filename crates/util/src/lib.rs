//! # rootless-util
//!
//! Foundation crate for the `rootless` workspace — the reproduction of
//! *On Eliminating Root Nameservers from the DNS* (Allman, HotNets 2019).
//!
//! Everything here is dependency-free and deterministic, because the
//! simulator and every experiment must replay bit-identically from a seed:
//!
//! * [`sha256`] — SHA-256 / HMAC-SHA256 (FIPS 180-4, RFC 2104) from scratch;
//!   the hash under the simulated DNSSEC layer and the rsync strong hash.
//! * [`rolling`] — the rsync rolling (Adler-style) weak checksum.
//! * [`lzss`] — LZSS compression; stands in for gzip on the root zone file.
//! * [`varint`] — LEB128 varints for the container and delta formats.
//! * [`rng`] — self-contained xoshiro256** PRNG plus the samplers the
//!   workload generators use (Zipf, exponential, weighted choice), and the
//!   one splitmix64 definition every seed-derivation path routes through.
//! * [`digest`] — canonical FNV-1a/splitmix state digests for the model
//!   checker's visited-state pruning.
//! * [`parallelism`] — capped available-parallelism detection shared by the
//!   sweep executor's `--jobs 0` and the serving runtime's core-count
//!   default.
//! * [`stats`] — Welford accumulators, percentiles, histograms, formatting.
//! * [`time`] — simulated clock types and civil-calendar arithmetic for the
//!   longitudinal experiments.
//! * [`hex`] — digest formatting.

#![warn(missing_docs)]

pub mod digest;
pub mod hex;
pub mod lzss;
pub mod parallelism;
pub mod rng;
pub mod rolling;
pub mod sha256;
pub mod stats;
pub mod time;
pub mod varint;

pub use digest::StateDigest;
pub use rng::DetRng;
pub use time::{Date, SimDuration, SimTime};
