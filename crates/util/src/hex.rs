//! Minimal hex encoding/decoding for digests and wire-format dumps.

/// Encodes `data` as lowercase hex.
pub fn encode(data: &[u8]) -> String {
    const ALPHA: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(data.len() * 2);
    for b in data {
        out.push(ALPHA[(b >> 4) as usize] as char);
        out.push(ALPHA[(b & 0xf) as usize] as char);
    }
    out
}

/// Decodes a hex string (case-insensitive). Returns `None` on odd length or
/// non-hex characters.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let nib = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks(2) {
        out.push((nib(pair[0])? << 4) | nib(pair[1])?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn uppercase_accepted() {
        assert_eq!(decode("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(decode("abc").is_none());
        assert!(decode("zz").is_none());
    }
}
