//! LZSS dictionary compression with a varint container.
//!
//! The paper works with the *compressed* root zone file (~1.1 MB) throughout
//! §5: the distribution-load analysis ships the compressed file, and the
//! 37 ms extraction experiment scans "the standard compressed root zone
//! file". No compression crate is in the approved offline set, so this module
//! implements a classic LZSS scheme from scratch:
//!
//! * 64 KiB sliding window, chained hash table over 4-byte prefixes,
//! * greedy parse with a bounded match-chain search,
//! * token stream of literals runs and `(distance, length)` copies, encoded
//!   with LEB128 varints behind a small header with the decompressed size.
//!
//! On master-file text (highly repetitive: TTLs, record types, shared label
//! suffixes) it reaches roughly 4–6× compression, matching the shape of the
//! paper's gzip figure (22K records ≈ 2 MB text → ~1.1 MB is gzip ≈ 2×; LZSS
//! without entropy coding lands in the same order of magnitude).

use crate::varint;

/// Magic bytes identifying the container format.
const MAGIC: &[u8; 4] = b"RZLZ";

/// Minimum match length worth encoding as a copy token.
const MIN_MATCH: usize = 4;

/// Maximum match length (keeps token varints short; longer repeats simply
/// emit several tokens).
const MAX_MATCH: usize = 1 << 15;

/// Sliding-window size; distances never exceed this.
const WINDOW: usize = 1 << 16;

/// How many hash-chain candidates to examine per position.
const CHAIN_DEPTH: usize = 32;

/// Errors returned by [`decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LzssError {
    /// Input does not start with the container magic.
    BadMagic,
    /// Varint or token stream ended prematurely or decoded inconsistently.
    Truncated,
    /// A copy token referenced data before the start of the output.
    BadDistance,
    /// Decompressed output did not match the length declared in the header.
    LengthMismatch,
}

impl std::fmt::Display for LzssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LzssError::BadMagic => write!(f, "missing RZLZ container magic"),
            LzssError::Truncated => write!(f, "truncated LZSS stream"),
            LzssError::BadDistance => write!(f, "copy token distance exceeds output"),
            LzssError::LengthMismatch => write!(f, "decompressed length differs from header"),
        }
    }
}

impl std::error::Error for LzssError {}

fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9e37_79b1) >> 17) as usize & (HASH_SIZE - 1)
}

const HASH_SIZE: usize = 1 << 15;

/// Compresses `input` into the RZLZ container format.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(MAGIC);
    varint::write_u64(&mut out, input.len() as u64);

    // head[h] = most recent position with hash h; prev[pos % WINDOW] = chain.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW];

    let mut literals: Vec<u8> = Vec::new();
    let mut pos = 0usize;

    let flush_literals = |out: &mut Vec<u8>, literals: &mut Vec<u8>| {
        if !literals.is_empty() {
            // Token kind 0: literal run.
            varint::write_u64(out, 0);
            varint::write_u64(out, literals.len() as u64);
            out.extend_from_slice(literals);
            literals.clear();
        }
    };

    while pos < input.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if pos + MIN_MATCH <= input.len() {
            let h = hash4(&input[pos..]);
            let mut candidate = head[h];
            let mut depth = 0;
            while candidate != usize::MAX && depth < CHAIN_DEPTH {
                if pos - candidate > WINDOW - 1 {
                    break;
                }
                let limit = (input.len() - pos).min(MAX_MATCH);
                let mut l = 0usize;
                while l < limit && input[candidate + l] == input[pos + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = pos - candidate;
                    if l >= limit {
                        break;
                    }
                }
                candidate = prev[candidate % WINDOW];
                depth += 1;
            }
        }

        if best_len >= MIN_MATCH {
            flush_literals(&mut out, &mut literals);
            // Token kind 1: copy(distance, length).
            varint::write_u64(&mut out, 1);
            varint::write_u64(&mut out, best_dist as u64);
            varint::write_u64(&mut out, best_len as u64);
            // Insert hash entries for every covered position so later matches
            // can reference inside this copy.
            let end = pos + best_len;
            while pos < end {
                if pos + MIN_MATCH <= input.len() {
                    let h = hash4(&input[pos..]);
                    prev[pos % WINDOW] = head[h];
                    head[h] = pos;
                }
                pos += 1;
            }
        } else {
            if pos + MIN_MATCH <= input.len() {
                let h = hash4(&input[pos..]);
                prev[pos % WINDOW] = head[h];
                head[h] = pos;
            }
            literals.push(input[pos]);
            pos += 1;
        }
    }
    flush_literals(&mut out, &mut literals);
    out
}

/// Decompresses an RZLZ container produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, LzssError> {
    if input.len() < 4 || &input[..4] != MAGIC {
        return Err(LzssError::BadMagic);
    }
    let mut rest = &input[4..];
    let (total_len, used) = varint::read_u64(rest).ok_or(LzssError::Truncated)?;
    rest = &rest[used..];
    let total_len = total_len as usize;
    let mut out = Vec::with_capacity(total_len);

    while !rest.is_empty() {
        let (kind, used) = varint::read_u64(rest).ok_or(LzssError::Truncated)?;
        rest = &rest[used..];
        match kind {
            0 => {
                let (n, used) = varint::read_u64(rest).ok_or(LzssError::Truncated)?;
                rest = &rest[used..];
                let n = n as usize;
                if rest.len() < n {
                    return Err(LzssError::Truncated);
                }
                out.extend_from_slice(&rest[..n]);
                rest = &rest[n..];
            }
            1 => {
                let (dist, used) = varint::read_u64(rest).ok_or(LzssError::Truncated)?;
                rest = &rest[used..];
                let (len, used) = varint::read_u64(rest).ok_or(LzssError::Truncated)?;
                rest = &rest[used..];
                let (dist, len) = (dist as usize, len as usize);
                if dist == 0 || dist > out.len() {
                    return Err(LzssError::BadDistance);
                }
                let start = out.len() - dist;
                // Overlapping copies are legal (run-length-style repeats).
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
            _ => return Err(LzssError::Truncated),
        }
        if out.len() > total_len {
            return Err(LzssError::LengthMismatch);
        }
    }
    if out.len() != total_len {
        return Err(LzssError::LengthMismatch);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d, data);
    }

    #[test]
    fn empty_roundtrip() {
        roundtrip(b"");
    }

    #[test]
    fn short_roundtrip() {
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn repetitive_text_compresses() {
        let line = b"com.\t172800\tIN\tNS\ta.gtld-servers.net.\n";
        let mut data = Vec::new();
        for _ in 0..1000 {
            data.extend_from_slice(line);
        }
        let c = compress(&data);
        assert!(c.len() < data.len() / 10, "compressed {} of {}", c.len(), data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn zone_like_text_roundtrip_and_ratio() {
        let mut data = String::new();
        for i in 0..2000 {
            data.push_str(&format!(
                "tld{i:04}.\t172800\tIN\tNS\tns{}.dns-operator{}.example.\n",
                i % 4,
                i % 97
            ));
            data.push_str(&format!("ns{}.dns-operator{}.example.\t172800\tIN\tA\t192.0.{}.{}\n", i % 4, i % 97, i % 256, (i * 7) % 256));
        }
        let raw = data.as_bytes();
        let c = compress(raw);
        assert!(c.len() * 2 < raw.len(), "expected ≥2x ratio, got {} of {}", c.len(), raw.len());
        assert_eq!(decompress(&c).unwrap(), raw);
    }

    #[test]
    fn incompressible_data_roundtrip() {
        let mut rng = crate::rng::DetRng::seed_from_u64(1234);
        let data: Vec<u8> = (0..50_000).map(|_| rng.next_u64() as u8).collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        // Random data should not balloon by more than the token framing.
        assert!(c.len() < data.len() + data.len() / 8 + 64);
    }

    #[test]
    fn overlapping_copy_runs() {
        // "aaaa..." forces overlapping copy tokens (dist 1, long len).
        let data = vec![b'a'; 100_000];
        let c = compress(&data);
        assert!(c.len() < 200, "run-length case should be tiny, got {}", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn long_input_exceeding_window() {
        let mut data = Vec::new();
        for i in 0..30_000u32 {
            data.extend_from_slice(format!("record-{i};").as_bytes());
        }
        roundtrip(&data);
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(decompress(b"XXXX\x00"), Err(LzssError::BadMagic));
        assert_eq!(decompress(b""), Err(LzssError::BadMagic));
    }

    #[test]
    fn rejects_truncated_stream() {
        let c = compress(b"hello hello hello hello");
        assert!(matches!(
            decompress(&c[..c.len() - 1]),
            Err(LzssError::Truncated) | Err(LzssError::LengthMismatch)
        ));
    }

    #[test]
    fn rejects_corrupted_distance() {
        // Hand-craft: header for 4 bytes, then a copy token with distance 9.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        varint::write_u64(&mut buf, 4);
        varint::write_u64(&mut buf, 1); // copy
        varint::write_u64(&mut buf, 9); // bogus distance into empty output
        varint::write_u64(&mut buf, 4);
        assert_eq!(decompress(&buf), Err(LzssError::BadDistance));
    }
}
