//! Simulated time and civil-calendar helpers.
//!
//! The discrete-event simulator needs a monotonic clock ([`SimTime`],
//! nanosecond ticks since the simulation epoch), and the longitudinal
//! experiments (Fig. 1, Fig. 2, the April-2019 TTL-stability study) need real
//! calendar arithmetic — "the 15th of each month since March 2015" — which
//! [`Date`] provides via Howard Hinnant's `days_from_civil` algorithm.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Nanoseconds in common units.
pub const NANOS_PER_MICRO: u64 = 1_000;
/// Nanoseconds per millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Seconds per day.
pub const SECS_PER_DAY: u64 = 86_400;

/// A span of simulated time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    pub const fn from_nanos(n: u64) -> Self {
        SimDuration(n)
    }
    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }
    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }
    /// From seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }
    /// From whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * NANOS_PER_SEC)
    }
    /// From whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * NANOS_PER_SEC)
    }
    /// From whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * SECS_PER_DAY * NANOS_PER_SEC)
    }
    /// From fractional milliseconds (clamps negatives to zero).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * NANOS_PER_MILLI as f64) as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// As fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }
    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }
    /// As whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / NANOS_PER_SEC
    }

    /// Saturating multiply by an integer factor.
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= NANOS_PER_MICRO {
            write!(f, "{:.3}us", self.0 as f64 / NANOS_PER_MICRO as f64)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An instant on the simulated clock (nanoseconds since the sim epoch).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Seconds since the epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / NANOS_PER_SEC
    }
    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }
    /// Elapsed span since `earlier` (saturating at zero).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
    /// Checked addition.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

/// A civil (proleptic Gregorian) calendar date.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    /// Year, e.g. 2019.
    pub year: i32,
    /// Month 1–12.
    pub month: u8,
    /// Day of month 1–31.
    pub day: u8,
}

impl Date {
    /// Constructs a date; panics on out-of-range month/day (days are checked
    /// against the actual month length).
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "month {month}");
        assert!(day >= 1 && day <= days_in_month(year, month), "day {day} in {year}-{month:02}");
        Date { year, month, day }
    }

    /// Days since the civil epoch 1970-01-01 (may be negative).
    pub fn to_epoch_days(self) -> i64 {
        // Howard Hinnant's days_from_civil.
        let y = self.year as i64 - if self.month <= 2 { 1 } else { 0 };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let m = self.month as i64;
        let d = self.day as i64;
        let doy = (153 * (m + if m > 2 { -3 } else { 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }

    /// Inverse of [`Date::to_epoch_days`].
    pub fn from_epoch_days(days: i64) -> Self {
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = doy - (153 * mp + 2) / 5 + 1;
        let m = if mp < 10 { mp + 3 } else { mp - 9 };
        Date { year: (y + if m <= 2 { 1 } else { 0 }) as i32, month: m as u8, day: d as u8 }
    }

    /// This date plus `n` days (n may be negative).
    pub fn plus_days(self, n: i64) -> Self {
        Date::from_epoch_days(self.to_epoch_days() + n)
    }

    /// Number of days from `self` to `other` (positive if `other` is later).
    pub fn days_until(self, other: Date) -> i64 {
        other.to_epoch_days() - self.to_epoch_days()
    }

    /// First day of the following month.
    pub fn next_month(self) -> Self {
        if self.month == 12 {
            Date::new(self.year + 1, 1, 1)
        } else {
            Date::new(self.year, self.month + 1, 1)
        }
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// True for Gregorian leap years.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Length of `month` in `year`.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("month {month}"),
    }
}

/// Iterator over the same day-of-month in consecutive months — e.g. the
/// "15th of each month" sampling both longitudinal figures use. Months whose
/// length is shorter than `day` are clamped to their last day.
pub fn monthly_series(start: Date, end_inclusive: Date, day: u8) -> Vec<Date> {
    let mut out = Vec::new();
    let mut cursor = Date::new(start.year, start.month, 1);
    loop {
        let d = day.min(days_in_month(cursor.year, cursor.month));
        let sample = Date::new(cursor.year, cursor.month, d);
        if sample > end_inclusive {
            break;
        }
        if sample >= start {
            out.push(sample);
        }
        cursor = cursor.next_month();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_units() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2 * NANOS_PER_SEC);
        assert_eq!(SimDuration::from_days(2).as_secs(), 172_800);
        assert_eq!(SimDuration::from_hours(42).as_secs(), 151_200);
        assert_eq!(SimDuration::from_millis(37).as_millis_f64(), 37.0);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(5);
        assert_eq!(t.as_secs(), 5);
        assert_eq!((t - SimTime::ZERO).as_secs(), 5);
        assert_eq!(SimTime::ZERO - t, SimDuration::ZERO, "saturating");
    }

    #[test]
    fn duration_display() {
        assert_eq!(SimDuration::from_millis(37).to_string(), "37.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
    }

    #[test]
    fn epoch_day_known_values() {
        assert_eq!(Date::new(1970, 1, 1).to_epoch_days(), 0);
        assert_eq!(Date::new(1970, 1, 2).to_epoch_days(), 1);
        assert_eq!(Date::new(1969, 12, 31).to_epoch_days(), -1);
        // 2018-04-11, the DITL capture day, is 17632 days after the epoch.
        assert_eq!(Date::new(2018, 4, 11).to_epoch_days(), 17_632);
    }

    #[test]
    fn roundtrip_all_days_of_decade() {
        // Every day the paper's archive spans: 2009-04-28 .. 2019-12-31.
        let start = Date::new(2009, 4, 28).to_epoch_days();
        let end = Date::new(2019, 12, 31).to_epoch_days();
        for d in start..=end {
            let date = Date::from_epoch_days(d);
            assert_eq!(date.to_epoch_days(), d, "{date}");
        }
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2016));
        assert!(!is_leap_year(2019));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert_eq!(days_in_month(2016, 2), 29);
        assert_eq!(days_in_month(2019, 2), 28);
    }

    #[test]
    fn plus_days_crosses_boundaries() {
        assert_eq!(Date::new(2018, 2, 23).plus_days(47), Date::new(2018, 4, 11));
        assert_eq!(Date::new(2019, 1, 1).plus_days(-1), Date::new(2018, 12, 31));
    }

    #[test]
    fn days_until() {
        // The paper: ".llc" added 2018-02-23, DITL on 2018-04-11 = 47 days.
        assert_eq!(Date::new(2018, 2, 23).days_until(Date::new(2018, 4, 11)), 47);
    }

    #[test]
    fn monthly_series_fig2_span() {
        // Fig. 2: 15th of each month, March 2015 through July 2019.
        let series = monthly_series(Date::new(2015, 3, 1), Date::new(2019, 7, 31), 15);
        assert_eq!(series.first().copied(), Some(Date::new(2015, 3, 15)));
        assert_eq!(series.last().copied(), Some(Date::new(2019, 7, 15)));
        assert_eq!(series.len(), 53);
    }

    #[test]
    fn monthly_series_clamps_short_months() {
        let series = monthly_series(Date::new(2019, 1, 1), Date::new(2019, 3, 31), 31);
        assert_eq!(series, vec![Date::new(2019, 1, 31), Date::new(2019, 2, 28), Date::new(2019, 3, 31)]);
    }

    #[test]
    fn date_ordering() {
        assert!(Date::new(2019, 4, 1) < Date::new(2019, 4, 2));
        assert!(Date::new(2018, 12, 31) < Date::new(2019, 1, 1));
    }
}
