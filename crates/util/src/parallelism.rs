//! Capped available-parallelism detection.
//!
//! Two very different consumers ask "how many threads should I use by
//! default?": the experiment sweep executor (`--jobs 0`) and the serving
//! runtime's per-core shard count (`--runtime-threads 0`). Both answers
//! must come from one place so they cannot drift — and both need a cap,
//! because `available_parallelism()` on a large host would otherwise spawn
//! hundreds of workers for task matrices (or ring topologies) that max out
//! far earlier.

use std::num::NonZeroUsize;

/// Default ceiling on auto-detected parallelism. Sweep matrices and shard
/// counts in this workspace saturate well below this; anything higher just
/// burns memory on idle per-worker state.
pub const DEFAULT_PARALLELISM_CAP: usize = 64;

/// The machine's available parallelism clamped to `[1, cap.max(1)]`.
/// Detection failure (exotic platforms, restricted cgroups) degrades to 1,
/// never to a panic — a serial run is always a valid schedule.
pub fn available_parallelism_capped(cap: usize) -> usize {
    let detected = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
    detected.clamp(1, cap.max(1))
}

/// The default "auto" answer: available parallelism under
/// [`DEFAULT_PARALLELISM_CAP`]. This is what `--jobs 0` and
/// `--runtime-threads 0` resolve to.
pub fn auto_parallelism() -> usize {
    available_parallelism_capped(DEFAULT_PARALLELISM_CAP)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_is_respected() {
        assert_eq!(available_parallelism_capped(1), 1);
        for cap in [1, 2, 3, 7, 64] {
            let n = available_parallelism_capped(cap);
            assert!(n >= 1, "cap {cap} gave {n}");
            assert!(n <= cap, "cap {cap} gave {n}");
        }
    }

    #[test]
    fn zero_cap_degrades_to_one_not_zero() {
        assert_eq!(available_parallelism_capped(0), 1);
    }

    #[test]
    fn auto_is_the_capped_default() {
        let auto = auto_parallelism();
        assert!(auto >= 1);
        assert!(auto <= DEFAULT_PARALLELISM_CAP);
        assert_eq!(auto, available_parallelism_capped(DEFAULT_PARALLELISM_CAP));
    }

    #[test]
    fn huge_cap_equals_detected_parallelism() {
        // With a cap far above any real machine, the helper must return the
        // raw detection (floored at 1), so the cap is the only thing it adds.
        let detected =
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
        assert_eq!(available_parallelism_capped(usize::MAX), detected.max(1));
    }
}
