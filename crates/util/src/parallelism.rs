//! Capped available-parallelism detection.
//!
//! Two very different consumers ask "how many threads should I use by
//! default?": the experiment sweep executor (`--jobs 0`) and the serving
//! runtime's per-core shard count (`--runtime-threads 0`). Both answers
//! must come from one place so they cannot drift — and both need a cap,
//! because `available_parallelism()` on a large host would otherwise spawn
//! hundreds of workers for task matrices (or ring topologies) that max out
//! far earlier.
//!
//! The `ROOTLESS_THREADS` environment variable overrides detection
//! entirely (clamped to `[1, 64]`): containers and CI runners frequently
//! misreport their cpu budget, and a pinned override also makes "auto"
//! reproducible across hosts. Unset, empty or unparsable values fall back
//! to detection — an operator typo degrades to the default, never to a
//! panic.

use std::num::NonZeroUsize;

/// Default ceiling on auto-detected parallelism. Sweep matrices and shard
/// counts in this workspace saturate well below this; anything higher just
/// burns memory on idle per-worker state.
pub const DEFAULT_PARALLELISM_CAP: usize = 64;

/// Environment variable that pins every "auto" thread-count answer
/// (`--jobs 0`, `--runtime-threads 0`, `--sim-threads 0`) to a fixed
/// value, clamped to `[1, DEFAULT_PARALLELISM_CAP]`.
pub const THREADS_ENV: &str = "ROOTLESS_THREADS";

/// The `ROOTLESS_THREADS` override, if set to something parsable.
/// `0` clamps up to 1 (a serial run, not a panic); values above
/// [`DEFAULT_PARALLELISM_CAP`] clamp down to it.
fn env_override() -> Option<usize> {
    let raw = std::env::var(THREADS_ENV).ok()?;
    let n: usize = raw.trim().parse().ok()?;
    Some(n.clamp(1, DEFAULT_PARALLELISM_CAP))
}

/// The machine's available parallelism clamped to `[1, cap.max(1)]`.
/// Detection failure (exotic platforms, restricted cgroups) degrades to 1,
/// never to a panic — a serial run is always a valid schedule. A
/// `ROOTLESS_THREADS` override replaces detection (then the `cap` clamp
/// still applies, so callers with tighter ceilings keep them).
pub fn available_parallelism_capped(cap: usize) -> usize {
    let detected = env_override().unwrap_or_else(|| {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    });
    detected.clamp(1, cap.max(1))
}

/// The default "auto" answer: available parallelism under
/// [`DEFAULT_PARALLELISM_CAP`]. This is what `--jobs 0`,
/// `--runtime-threads 0` and `--sim-threads 0` resolve to.
pub fn auto_parallelism() -> usize {
    available_parallelism_capped(DEFAULT_PARALLELISM_CAP)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Process-wide environment is shared across the test harness's
    /// threads; every test that reads or writes `ROOTLESS_THREADS` holds
    /// this lock so they cannot observe each other's values.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    /// Runs `f` with `ROOTLESS_THREADS` set to `val` (or unset for
    /// `None`), restoring the previous state afterwards.
    fn with_env<R>(val: Option<&str>, f: impl FnOnce() -> R) -> R {
        let _guard = ENV_LOCK.lock().unwrap();
        let saved = std::env::var(THREADS_ENV).ok();
        match val {
            Some(v) => std::env::set_var(THREADS_ENV, v),
            None => std::env::remove_var(THREADS_ENV),
        }
        let out = f();
        match saved {
            Some(v) => std::env::set_var(THREADS_ENV, v),
            None => std::env::remove_var(THREADS_ENV),
        }
        out
    }

    #[test]
    fn cap_is_respected() {
        with_env(None, || {
            assert_eq!(available_parallelism_capped(1), 1);
            for cap in [1, 2, 3, 7, 64] {
                let n = available_parallelism_capped(cap);
                assert!(n >= 1, "cap {cap} gave {n}");
                assert!(n <= cap, "cap {cap} gave {n}");
            }
        });
    }

    #[test]
    fn zero_cap_degrades_to_one_not_zero() {
        with_env(None, || {
            assert_eq!(available_parallelism_capped(0), 1);
        });
    }

    #[test]
    fn auto_is_the_capped_default() {
        with_env(None, || {
            let auto = auto_parallelism();
            assert!(auto >= 1);
            assert!(auto <= DEFAULT_PARALLELISM_CAP);
            assert_eq!(auto, available_parallelism_capped(DEFAULT_PARALLELISM_CAP));
        });
    }

    #[test]
    fn huge_cap_equals_detected_parallelism() {
        // With a cap far above any real machine, the helper must return the
        // raw detection (floored at 1), so the cap is the only thing it adds.
        with_env(None, || {
            let detected =
                std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
            assert_eq!(available_parallelism_capped(usize::MAX), detected.max(1));
        });
    }

    #[test]
    fn env_override_pins_auto() {
        with_env(Some("3"), || {
            assert_eq!(auto_parallelism(), 3);
            assert_eq!(available_parallelism_capped(usize::MAX), 3);
            // A caller's tighter cap still wins over the override.
            assert_eq!(available_parallelism_capped(2), 2);
        });
    }

    #[test]
    fn env_override_clamps_to_bounds() {
        with_env(Some("0"), || assert_eq!(auto_parallelism(), 1));
        with_env(Some("10000"), || {
            assert_eq!(auto_parallelism(), DEFAULT_PARALLELISM_CAP);
        });
    }

    #[test]
    fn env_override_garbage_falls_back_to_detection() {
        let detected = with_env(None, auto_parallelism);
        with_env(Some("lots"), || assert_eq!(auto_parallelism(), detected));
        with_env(Some(""), || assert_eq!(auto_parallelism(), detected));
        with_env(Some(" 2 "), || assert_eq!(auto_parallelism(), 2));
    }
}
