//! LEB128-style variable-length integers, used by the LZSS container and the
//! rsync delta wire format.

/// Appends `value` to `out` as an unsigned LEB128 varint.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a varint from the front of `input`. Returns the value and the number
/// of bytes consumed, or `None` on truncation / overflow (more than 10 bytes).
pub fn read_u64(input: &[u8]) -> Option<(u64, usize)> {
    let mut value: u64 = 0;
    for (i, &byte) in input.iter().enumerate().take(10) {
        let payload = (byte & 0x7f) as u64;
        // The 10th byte may only contribute the single remaining bit.
        if i == 9 && payload > 1 {
            return None;
        }
        value |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Some((value, i + 1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 129, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let (got, used) = read_u64(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn single_byte_values() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf, vec![v as u8]);
        }
    }

    #[test]
    fn truncated_input_rejected() {
        assert!(read_u64(&[0x80]).is_none());
        assert!(read_u64(&[]).is_none());
    }

    #[test]
    fn overlong_input_rejected() {
        // 11 continuation bytes can never terminate within the allowed 10.
        let buf = [0xffu8; 11];
        assert!(read_u64(&buf).is_none());
    }

    #[test]
    fn reads_only_prefix() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 300);
        buf.extend_from_slice(b"tail");
        let (v, used) = read_u64(&buf).unwrap();
        assert_eq!(v, 300);
        assert_eq!(&buf[used..], b"tail");
    }
}
