//! Canonical state digests for the model checker.
//!
//! The exhaustive explorer in `crates/mc` prunes revisited states by
//! hashing the *semantic* state of a simulation — cache contents,
//! in-flight queries, pending timers — into one `u64`. Two requirements
//! shape this type:
//!
//! 1. **Canonical.** The digest must be a pure function of the state's
//!    meaning, not its memory layout: callers sort hash-map contents
//!    before feeding them in, and float fields go through their IEEE bit
//!    patterns. Two interleavings that converge to the same semantic
//!    state must produce the same digest, or pruning silently stops
//!    working.
//! 2. **Self-contained.** No `std::hash` randomization, no dependency on
//!    `DefaultHasher`'s unstable algorithm — digests must be identical
//!    across runs and across toolchain updates, because tier-1 gates
//!    compare explorer reports byte for byte.
//!
//! The construction is FNV-1a over a byte stream with a splitmix64-style
//! finalizer, which is plenty for a visited-set over a few million states
//! (collisions only cost soundness of *pruning*, and a 64-bit space keeps
//! the birthday bound far away at model-checking scales).

/// Accumulates a canonical 64-bit digest of semantic state.
///
/// Write order matters: callers are responsible for feeding fields in a
/// deterministic, layout-independent order (sort collections first).
#[derive(Clone, Debug)]
pub struct StateDigest {
    h: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StateDigest {
    /// Starts a fresh digest.
    pub fn new() -> StateDigest {
        StateDigest { h: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h = (self.h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.h = (self.h ^ v as u64).wrapping_mul(FNV_PRIME);
    }

    /// Feeds a `u16` (little-endian).
    pub fn write_u16(&mut self, v: u16) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize` widened to 64 bits, so digests agree across
    /// pointer widths.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds an `f64` via its IEEE-754 bit pattern (canonical: the same
    /// float always digests the same, and `-0.0 != 0.0` stays visible).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a length-prefixed string, so `("ab","c")` and `("a","bc")`
    /// digest differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Finishes with an avalanche pass (splitmix64 finalizer) so that
    /// digests of near-identical states spread over the whole 64-bit
    /// space — FNV alone clusters short inputs.
    pub fn finish(&self) -> u64 {
        let mut z = self.h;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Default for StateDigest {
    fn default() -> StateDigest {
        StateDigest::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = StateDigest::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = StateDigest::new();
        b.write_u64(1);
        b.write_u64(2);
        assert_eq!(a.finish(), b.finish());
        let mut c = StateDigest::new();
        c.write_u64(2);
        c.write_u64(1);
        assert_ne!(a.finish(), c.finish(), "field order must matter");
    }

    #[test]
    fn string_framing_prevents_concatenation_collisions() {
        let mut a = StateDigest::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StateDigest::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn empty_digest_is_stable() {
        // Pins the construction: FNV-1a offset basis through the
        // splitmix64 finalizer. If this moves, every visited-set and
        // every recorded counterexample token in the repo is invalidated.
        assert_eq!(StateDigest::new().finish(), 0xf52a_15e9_a9b5_e89b);
    }

    #[test]
    fn floats_digest_by_bit_pattern() {
        let mut a = StateDigest::new();
        a.write_f64(0.0);
        let mut b = StateDigest::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }
}
