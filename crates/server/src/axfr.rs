//! Zone transfer (AXFR, RFC 5936) — one of the §3 distribution options:
//! *"a public recursive server may provide the root zone via DNS' own zone
//! transfer mechanism"* (the root zone is available this way from ICANN).
//!
//! The transfer is modeled at message granularity: a SOA-bracketed stream of
//! response messages, plus a single-blob form for the simulator's
//! size-dependent link delays.

use rootless_proto::message::{Message, Rcode};
use rootless_proto::name::Name;
use rootless_proto::rr::{RType, Record};
use rootless_proto::wire::Encoder;
use rootless_zone::zone::Zone;

/// Records per AXFR response message (real servers pack to message size; a
/// fixed count keeps accounting simple).
pub const RECORDS_PER_MESSAGE: usize = 100;

/// Errors assembling a received transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxfrError {
    /// Stream did not start with a SOA record.
    MissingLeadingSoa,
    /// Stream did not end with the same SOA.
    MissingTrailingSoa,
    /// A record failed to insert into the assembled zone.
    BadRecord(String),
    /// Empty transfer.
    Empty,
}

impl std::fmt::Display for AxfrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AxfrError::MissingLeadingSoa => write!(f, "AXFR stream must start with SOA"),
            AxfrError::MissingTrailingSoa => write!(f, "AXFR stream must end with the starting SOA"),
            AxfrError::BadRecord(e) => write!(f, "bad record in AXFR stream: {e}"),
            AxfrError::Empty => write!(f, "empty AXFR stream"),
        }
    }
}

impl std::error::Error for AxfrError {}

/// Serves a full transfer of `zone` as a sequence of response messages with
/// transaction id `id`: SOA, all other records, SOA again.
pub fn serve(zone: &Zone, id: u16) -> Vec<Message> {
    let soa = zone
        .get(zone.origin(), RType::SOA)
        .map(|s| s.records())
        .unwrap_or_default();
    let mut stream: Vec<Record> = Vec::with_capacity(zone.record_count() + 2);
    stream.extend(soa.iter().cloned());
    for record in zone.records() {
        if record.rtype() != RType::SOA {
            stream.push(record);
        }
    }
    stream.extend(soa.iter().cloned());

    let mut messages = Vec::new();
    for chunk in stream.chunks(RECORDS_PER_MESSAGE) {
        let mut q = Message::query(id, zone.origin().clone(), RType::AXFR);
        let mut m = Message::response_to(&q, Rcode::NoError);
        m.header.authoritative = true;
        q.questions.clear();
        m.answers = chunk.to_vec();
        messages.push(m);
    }
    messages
}

/// Assembles a zone from a received AXFR stream, enforcing the SOA bracket.
pub fn assemble(messages: &[Message]) -> Result<Zone, AxfrError> {
    let records: Vec<&Record> = messages.iter().flat_map(|m| m.answers.iter()).collect();
    if records.is_empty() {
        return Err(AxfrError::Empty);
    }
    let first = records[0];
    if first.rtype() != RType::SOA {
        return Err(AxfrError::MissingLeadingSoa);
    }
    let last = records[records.len() - 1];
    if last.rtype() != RType::SOA || last.name != first.name || last.rdata != first.rdata {
        return Err(AxfrError::MissingTrailingSoa);
    }
    let origin: Name = first.name.clone();
    let mut zone = Zone::new(origin);
    for record in &records[..records.len() - 1] {
        zone.insert((*record).clone()).map_err(|e| AxfrError::BadRecord(e.to_string()))?;
    }
    Ok(zone)
}

/// Total wire bytes of a transfer — what the distribution experiment counts.
/// One pooled encoder is reused across the whole message stream.
pub fn transfer_bytes(zone: &Zone) -> usize {
    let mut enc = Encoder::new();
    serve(zone, 0)
        .iter()
        .map(|m| {
            m.encode_into(&mut enc);
            enc.len()
        })
        .sum()
}

/// [`transfer_bytes`] with metrics: bumps `axfr.transfers`, `axfr.bytes`,
/// and `axfr.messages` counters and observes per-message wire sizes into the
/// `axfr.message_bytes` histogram. Returns the total wire bytes moved.
pub fn observed_transfer_bytes(zone: &Zone, registry: &rootless_obs::metrics::Registry) -> usize {
    let transfers = registry.counter("axfr.transfers");
    let bytes = registry.counter("axfr.bytes");
    let messages = registry.counter("axfr.messages");
    let message_bytes = registry.histogram("axfr.message_bytes");
    let mut enc = Encoder::new();
    let mut total = 0usize;
    for m in serve(zone, 0) {
        m.encode_into(&mut enc);
        total += enc.len();
        messages.inc();
        message_bytes.observe(enc.len() as u64);
    }
    transfers.inc();
    bytes.add(total as u64);
    total
}

/// [`ixfr_bytes`] with metrics: bumps `ixfr.transfers` / `ixfr.bytes` /
/// `ixfr.messages` and observes per-message sizes into `ixfr.message_bytes`.
pub fn observed_ixfr_bytes(old: &Zone, new: &Zone, registry: &rootless_obs::metrics::Registry) -> usize {
    let transfers = registry.counter("ixfr.transfers");
    let bytes = registry.counter("ixfr.bytes");
    let messages = registry.counter("ixfr.messages");
    let message_bytes = registry.histogram("ixfr.message_bytes");
    let mut enc = Encoder::new();
    let mut total = 0usize;
    for m in serve_ixfr(old, new, 0) {
        m.encode_into(&mut enc);
        total += enc.len();
        messages.inc();
        message_bytes.observe(enc.len() as u64);
    }
    transfers.inc();
    bytes.add(total as u64);
    total
}

// ---------------------------------------------------------------------------
// IXFR (RFC 1995): incremental transfer

/// Serves an incremental transfer from `old` to `new` as response messages
/// with the RFC 1995 structure:
///
/// ```text
/// new-SOA, old-SOA, <deleted records...>, new-SOA, <added records...>, new-SOA
/// ```
///
/// Callers should fall back to [`serve`] (full AXFR) when the requester's
/// serial is unknown — mirrored by [`apply_ixfr`] refusing serial mismatches.
pub fn serve_ixfr(old: &Zone, new: &Zone, id: u16) -> Vec<Message> {
    let old_soa = soa_record(old);
    let new_soa = soa_record(new);

    let old_set: std::collections::HashSet<Record> =
        old.records().filter(|r| r.rtype() != RType::SOA).collect();
    let new_set: std::collections::HashSet<Record> =
        new.records().filter(|r| r.rtype() != RType::SOA).collect();
    let mut deleted: Vec<Record> = old_set.difference(&new_set).cloned().collect();
    let mut added: Vec<Record> = new_set.difference(&old_set).cloned().collect();
    deleted.sort_by(|a, b| a.name.cmp(&b.name).then(a.rtype().to_u16().cmp(&b.rtype().to_u16())));
    added.sort_by(|a, b| a.name.cmp(&b.name).then(a.rtype().to_u16().cmp(&b.rtype().to_u16())));

    let mut stream: Vec<Record> = Vec::with_capacity(deleted.len() + added.len() + 4);
    stream.push(new_soa.clone());
    stream.push(old_soa);
    stream.extend(deleted);
    stream.push(new_soa.clone());
    stream.extend(added);
    stream.push(new_soa);

    let q = Message::query(id, new.origin().clone(), RType::AXFR);
    stream
        .chunks(RECORDS_PER_MESSAGE)
        .map(|chunk| {
            let mut m = Message::response_to(&q, Rcode::NoError);
            m.header.authoritative = true;
            m.answers = chunk.to_vec();
            m
        })
        .collect()
}

fn soa_record(zone: &Zone) -> Record {
    zone.get(zone.origin(), RType::SOA)
        .and_then(|s| s.records().into_iter().next())
        .expect("zone has SOA")
}

/// Applies a received IXFR stream to `old`, producing the new zone.
pub fn apply_ixfr(old: &Zone, messages: &[Message]) -> Result<Zone, AxfrError> {
    let records: Vec<&Record> = messages.iter().flat_map(|m| m.answers.iter()).collect();
    if records.len() < 4 {
        return Err(AxfrError::Empty);
    }
    let new_soa = records[0];
    if new_soa.rtype() != RType::SOA {
        return Err(AxfrError::MissingLeadingSoa);
    }
    let old_soa = records[1];
    if old_soa.rtype() != RType::SOA {
        return Err(AxfrError::MissingLeadingSoa);
    }
    // The stream must apply to exactly the version we hold.
    let held = soa_record(old);
    if *old_soa != held {
        return Err(AxfrError::BadRecord(format!(
            "IXFR applies to {old_soa}, we hold {held}"
        )));
    }
    let last = records[records.len() - 1];
    if last != new_soa {
        return Err(AxfrError::MissingTrailingSoa);
    }

    // Between old-SOA and the next new-SOA: deletions; after that: additions.
    let mut zone = old.clone();
    zone.remove_rrset(&held.name.clone(), RType::SOA);
    let mut in_deletions = true;
    for r in &records[2..records.len() - 1] {
        if **r == *new_soa && in_deletions {
            in_deletions = false;
            continue;
        }
        if in_deletions {
            if !zone.remove_rdata(&r.name, r.rtype(), &r.rdata) {
                return Err(AxfrError::BadRecord(format!("deletion of absent record {r}")));
            }
        } else {
            zone.insert((**r).clone()).map_err(|e| AxfrError::BadRecord(e.to_string()))?;
        }
    }
    if in_deletions {
        return Err(AxfrError::MissingTrailingSoa);
    }
    zone.insert(new_soa.clone()).map_err(|e| AxfrError::BadRecord(e.to_string()))?;
    Ok(zone)
}

/// Wire bytes of an incremental transfer (cost accounting for §5.2).
pub fn ixfr_bytes(old: &Zone, new: &Zone) -> usize {
    let mut enc = Encoder::new();
    serve_ixfr(old, new, 0)
        .iter()
        .map(|m| {
            m.encode_into(&mut enc);
            enc.len()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rootless_zone::rootzone::{self, RootZoneConfig};

    #[test]
    fn roundtrip_small_zone() {
        let zone = rootzone::build(&RootZoneConfig::small(50));
        let messages = serve(&zone, 42);
        let back = assemble(&messages).unwrap();
        assert_eq!(back, zone);
    }

    #[test]
    fn stream_is_soa_bracketed() {
        let zone = rootzone::build(&RootZoneConfig::small(10));
        let messages = serve(&zone, 1);
        let first = &messages[0].answers[0];
        let last = messages.last().unwrap().answers.last().unwrap();
        assert_eq!(first.rtype(), RType::SOA);
        assert_eq!(last.rtype(), RType::SOA);
        assert_eq!(first, last);
    }

    #[test]
    fn message_count_scales_with_zone() {
        let zone = rootzone::build(&RootZoneConfig::small(50));
        let messages = serve(&zone, 1);
        let expected = (zone.record_count() + 1).div_ceil(RECORDS_PER_MESSAGE);
        assert_eq!(messages.len(), expected);
    }

    #[test]
    fn missing_trailing_soa_rejected() {
        let zone = rootzone::build(&RootZoneConfig::small(10));
        let mut messages = serve(&zone, 1);
        messages.last_mut().unwrap().answers.pop();
        assert!(matches!(assemble(&messages), Err(AxfrError::MissingTrailingSoa)));
    }

    #[test]
    fn missing_leading_soa_rejected() {
        let zone = rootzone::build(&RootZoneConfig::small(10));
        let mut messages = serve(&zone, 1);
        messages[0].answers.remove(0);
        assert!(matches!(
            assemble(&messages),
            Err(AxfrError::MissingLeadingSoa) | Err(AxfrError::MissingTrailingSoa)
        ));
    }

    #[test]
    fn empty_stream_rejected() {
        assert_eq!(assemble(&[]), Err(AxfrError::Empty));
    }

    #[test]
    fn transfer_bytes_plausible() {
        // A ~1.5K-record zone should move tens of KB once compressed by name
        // compression within messages.
        let zone = rootzone::build(&RootZoneConfig::small(100));
        let bytes = transfer_bytes(&zone);
        let records = zone.record_count();
        assert!(bytes > records * 10, "{bytes} bytes for {records} records");
        assert!(bytes < records * 120, "{bytes} bytes for {records} records");
    }

    #[test]
    fn ixfr_roundtrip_on_churned_zones() {
        use rootless_util::time::Date;
        use rootless_zone::churn::{ChurnConfig, Timeline};
        let t = Timeline::generate(
            RootZoneConfig::small(200),
            ChurnConfig::default(),
            Date::new(2019, 4, 1),
            4,
        );
        let old = t.snapshot(0);
        let new = t.snapshot(2);
        let messages = serve_ixfr(&old, &new, 9);
        let rebuilt = apply_ixfr(&old, &messages).unwrap();
        assert_eq!(rebuilt, new);
    }

    #[test]
    fn ixfr_much_smaller_than_axfr() {
        use rootless_util::time::Date;
        use rootless_zone::churn::{ChurnConfig, Timeline};
        let t = Timeline::generate(
            RootZoneConfig::small(300),
            ChurnConfig::default(),
            Date::new(2019, 4, 1),
            3,
        );
        let old = t.snapshot(0);
        let new = t.snapshot(1);
        let incremental = ixfr_bytes(&old, &new);
        let full = transfer_bytes(&new);
        assert!(incremental * 10 < full, "ixfr {incremental} vs axfr {full}");
    }

    #[test]
    fn ixfr_rejects_wrong_base_serial() {
        let a = rootzone::build(&RootZoneConfig { serial: 1, ..RootZoneConfig::small(20) });
        let b = rootzone::build(&RootZoneConfig { serial: 2, ..RootZoneConfig::small(21) });
        let c = rootzone::build(&RootZoneConfig { serial: 3, ..RootZoneConfig::small(22) });
        let messages = serve_ixfr(&b, &c, 1);
        assert!(matches!(apply_ixfr(&a, &messages), Err(AxfrError::BadRecord(_))));
    }

    #[test]
    fn ixfr_identity_transfer() {
        let zone = rootzone::build(&RootZoneConfig::small(15));
        let mut newer = zone.clone();
        // Bump only the serial.
        let mut soa = zone.soa().unwrap().clone();
        soa.serial += 1;
        newer.remove_rrset(&rootless_proto::name::Name::root(), RType::SOA);
        newer
            .insert(Record::new(
                rootless_proto::name::Name::root(),
                86_400,
                rootless_proto::rr::RData::Soa(soa),
            ))
            .unwrap();
        let messages = serve_ixfr(&zone, &newer, 1);
        // Tiny: just the SOA bracket.
        assert_eq!(messages.len(), 1);
        assert_eq!(messages[0].answers.len(), 4);
        let rebuilt = apply_ixfr(&zone, &messages).unwrap();
        assert_eq!(rebuilt, newer);
    }

    #[test]
    fn wire_roundtrip_of_transfer_messages() {
        let zone = rootzone::build(&RootZoneConfig::small(20));
        for m in serve(&zone, 9) {
            let decoded = Message::decode(&m.encode()).unwrap();
            assert_eq!(decoded, m);
        }
    }
}
