//! netsim adapters: authoritative servers as simulator nodes, plus the
//! deployment helper that stands up a full 13-letter anycast root fleet.

use std::net::Ipv4Addr;
use std::sync::Arc;

use std::sync::Mutex;
use rootless_netsim::geo::{city_point, GeoPoint};
use rootless_obs::metrics::{Counter, Registry};
use rootless_netsim::sim::{Ctx, Datagram, Node, NodeId, Sim};
use rootless_proto::view::MessageView;
use rootless_proto::wire::Encoder;
use rootless_util::rng::DetRng;
use rootless_zone::hints::{RootHints, ROOT_ADDRS};
use rootless_zone::zone::Zone;

use crate::auth::AuthServer;

/// Shared statistics handle for a fleet of server nodes (anycast instances
/// of one letter share one counter set in experiments that only need totals).
pub type SharedStats = Arc<Mutex<crate::auth::ServerStats>>;

/// A simulator node wrapping an [`AuthServer`]. Each datagram is decoded as
/// a DNS query and answered synchronously.
pub struct ServerNode {
    server: AuthServer,
    /// Count of undecodable datagrams received.
    pub decode_errors: u64,
    /// Optional fleet-level stats sink, merged into on every query.
    fleet_queries: Option<Arc<Mutex<u64>>>,
    /// Pooled response encoder: steady-state encoding allocates nothing.
    enc: Encoder,
    obs: Option<ServerNodeObs>,
}

/// Registry mirrors for the node-level adapter counters (`server.*`).
/// Shared across every node attached to the same registry, so they
/// aggregate over the whole deployment.
struct ServerNodeObs {
    queries: Counter,
    decode_errors: Counter,
}

impl ServerNode {
    /// Wraps a server.
    pub fn new(server: AuthServer) -> ServerNode {
        ServerNode { server, decode_errors: 0, fleet_queries: None, enc: Encoder::new(), obs: None }
    }

    /// Mirrors this node's counters (and the wrapped server's `auth.*`
    /// counters) into `registry` under `server.*`.
    pub fn attach_obs(&mut self, registry: &Registry) -> &mut Self {
        self.server.attach_obs(registry);
        self.obs = Some(ServerNodeObs {
            queries: registry.counter("server.queries"),
            decode_errors: registry.counter("server.decode_errors"),
        });
        self
    }

    /// Builder form of [`ServerNode::attach_obs`].
    pub fn with_obs(mut self, registry: &Registry) -> ServerNode {
        self.attach_obs(registry);
        self
    }

    /// Attaches a shared query counter (per-letter fleet totals).
    pub fn with_fleet_counter(mut self, counter: Arc<Mutex<u64>>) -> ServerNode {
        self.fleet_queries = Some(counter);
        self
    }

    /// The wrapped server (for stats inspection after a run).
    pub fn server(&self) -> &AuthServer {
        &self.server
    }
}

impl Node for ServerNode {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        // Borrowed parse first: stray responses are rejected on the QR bit
        // alone, without materializing any records.
        let view = match MessageView::parse(&dgram.payload) {
            Ok(view) if !view.header().response => view,
            Ok(_) => return, // stray response; servers ignore
            Err(_) => {
                self.decode_errors += 1;
                if let Some(o) = &self.obs {
                    o.decode_errors.inc();
                }
                return;
            }
        };
        match view.to_owned() {
            Ok(query) => {
                let resp = self.server.handle(&query);
                if let Some(counter) = &self.fleet_queries {
                    *counter.lock().unwrap() += 1;
                }
                if let Some(o) = &self.obs {
                    o.queries.inc();
                }
                resp.encode_into(&mut self.enc);
                ctx.send(dgram.src, self.enc.wire());
            }
            Err(_) => {
                self.decode_errors += 1;
                if let Some(o) = &self.obs {
                    o.decode_errors.inc();
                }
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
}

/// Handle to a deployed root fleet.
pub struct RootDeployment {
    /// Anycast IPv4 address per root letter (a–m).
    pub addrs: Vec<(char, Ipv4Addr)>,
    /// Node ids per letter, one per instance.
    pub instances: Vec<(char, Vec<NodeId>)>,
    /// Per-letter query counters, shared across that letter's instances.
    pub query_counters: Vec<(char, Arc<Mutex<u64>>)>,
}

impl RootDeployment {
    /// Total instances deployed.
    pub fn instance_count(&self) -> usize {
        self.instances.iter().map(|(_, v)| v.len()).sum()
    }

    /// Total queries across all letters.
    pub fn total_queries(&self) -> u64 {
        self.query_counters.iter().map(|(_, c)| *c.lock().unwrap()).sum()
    }

    /// All 13 anycast addresses (what an attacker pattern-matches on).
    pub fn root_addrs(&self) -> Vec<Ipv4Addr> {
        self.addrs.iter().map(|(_, a)| *a).collect()
    }
}

/// Deploys the 13 named roots into `sim` with `per_letter` instance counts
/// (e.g. from `rootless_zone::history::deployment_on`). All instances of a
/// letter serve the same shared zone and answer on the letter's well-known
/// anycast address. Instances are spread over city anchors.
pub fn deploy_root_fleet(
    sim: &mut Sim,
    zone: Arc<Zone>,
    per_letter: &[(char, usize)],
    seed: u64,
) -> RootDeployment {
    let mut rng = DetRng::seed_from_u64(seed ^ 0xf1ee7);
    let mut addrs = Vec::new();
    let mut instances = Vec::new();
    let mut query_counters = Vec::new();
    for (letter, count) in per_letter {
        let (_, v4, _) = ROOT_ADDRS
            .iter()
            .find(|(l, _, _)| l.starts_with(*letter))
            .unwrap_or_else(|| panic!("unknown root letter {letter}"));
        let anycast: Ipv4Addr = v4.parse().unwrap();
        let counter = Arc::new(Mutex::new(0u64));
        let mut ids = Vec::with_capacity(*count);
        for i in 0..*count {
            // Unique unicast address per instance in 203.x.y.z (doc range).
            let uni = Ipv4Addr::new(
                203,
                (*letter as u8) - b'a',
                (i / 250) as u8,
                (i % 250 + 1) as u8,
            );
            let geo = city_point(i * 13 + (*letter as usize), &mut rng);
            let node = ServerNode::new(AuthServer::new_shared(Arc::clone(&zone)))
                .with_fleet_counter(Arc::clone(&counter));
            let id = sim.add_node(uni, geo, Box::new(node));
            ids.push(id);
        }
        sim.add_anycast(anycast, ids.clone());
        addrs.push((*letter, anycast));
        instances.push((*letter, ids));
        query_counters.push((*letter, counter));
    }
    RootDeployment { addrs, instances, query_counters }
}

/// The hints addresses as parsed Ipv4 values, for clients of the deployment.
pub fn root_anycast_addrs() -> Vec<Ipv4Addr> {
    RootHints::standard().v4_addrs()
}

/// Places `count` resolver locations over the city anchors (with jitter),
/// for experiments that need a client population.
pub fn resolver_locations(count: usize, seed: u64) -> Vec<GeoPoint> {
    let mut rng = DetRng::seed_from_u64(seed ^ 0x9e01);
    (0..count).map(|i| city_point(i, &mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rootless_netsim::sim::Sim;
    use rootless_proto::message::Message;
    use rootless_proto::name::Name;
    use rootless_proto::rr::RType;
    use rootless_util::time::SimDuration;
    use rootless_zone::rootzone::{self, RootZoneConfig};

    /// A probe that sends one query to an address and records responses.
    struct QueryProbe {
        target: Ipv4Addr,
        query: Message,
        responses: Vec<Message>,
    }

    impl Node for QueryProbe {
        fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, dgram: Datagram) {
            if let Ok(m) = Message::decode(&dgram.payload) {
                self.responses.push(m);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            ctx.send(self.target, self.query.encode());
        }
    }

    #[test]
    fn fleet_answers_over_anycast() {
        let zone = Arc::new(rootzone::build(&RootZoneConfig::small(30)));
        let mut sim = Sim::new(1);
        let fleet = deploy_root_fleet(&mut sim, Arc::clone(&zone), &[('a', 3), ('j', 5)], 7);
        assert_eq!(fleet.instance_count(), 8);

        let tld = zone.tlds()[0].clone();
        let query = Message::query(77, tld.child("www").unwrap(), RType::A);
        let a_addr = fleet.addrs[0].1;
        let probe = sim.add_node(
            Ipv4Addr::new(10, 0, 0, 99),
            GeoPoint::new(51.5, -0.1),
            Box::new(QueryProbe { target: a_addr, query, responses: vec![] }),
        );
        sim.schedule_timer(probe, SimDuration::ZERO, 0);
        sim.run_to_completion();

        let probe_ref = (sim.node(probe) as &dyn std::any::Any)
            .downcast_ref::<QueryProbe>()
            .unwrap();
        assert_eq!(probe_ref.responses.len(), 1);
        let resp = &probe_ref.responses[0];
        assert_eq!(resp.header.id, 77);
        assert!(!resp.authorities.is_empty(), "expected referral");
        assert_eq!(fleet.total_queries(), 1);
    }

    #[test]
    fn fleet_survives_instance_failure() {
        let zone = Arc::new(rootzone::build(&RootZoneConfig::small(10)));
        let mut sim = Sim::new(2);
        let fleet = deploy_root_fleet(&mut sim, Arc::clone(&zone), &[('a', 3)], 7);
        let a_addr = fleet.addrs[0].1;
        // Kill the instance nearest to London; routing must fail over.
        let from = GeoPoint::new(51.5, -0.1);
        let nearest = sim.route(from, a_addr).unwrap();
        sim.set_down(nearest, true);
        let second = sim.route(from, a_addr).unwrap();
        assert_ne!(nearest, second);

        let query = Message::query(5, Name::parse("anything").unwrap(), RType::A);
        let probe = sim.add_node(
            Ipv4Addr::new(10, 0, 0, 99),
            from,
            Box::new(QueryProbe { target: a_addr, query, responses: vec![] }),
        );
        sim.schedule_timer(probe, SimDuration::ZERO, 0);
        sim.run_to_completion();
        let probe_ref = (sim.node(probe) as &dyn std::any::Any)
            .downcast_ref::<QueryProbe>()
            .unwrap();
        assert_eq!(probe_ref.responses.len(), 1, "failover must still answer");
    }

    #[test]
    fn server_node_ignores_garbage() {
        let zone = rootzone::build(&RootZoneConfig::small(5));
        let mut sim = Sim::new(3);
        let id = sim.add_node(
            Ipv4Addr::new(10, 1, 1, 1),
            GeoPoint::new(0.0, 0.0),
            Box::new(ServerNode::new(AuthServer::new(zone))),
        );
        sim.inject(
            GeoPoint::new(1.0, 1.0),
            Datagram { src: Ipv4Addr::new(10, 1, 1, 2), dst: Ipv4Addr::new(10, 1, 1, 1), payload: b"junk".into() },
        );
        sim.run_to_completion();
        let node = (sim.node(id) as &dyn std::any::Any).downcast_ref::<ServerNode>().unwrap();
        assert_eq!(node.decode_errors, 1);
    }

    #[test]
    fn obs_mirrors_server_counters() {
        let registry = Registry::new();
        let zone = rootzone::build(&RootZoneConfig::small(20));
        let mut sim = Sim::new(9);
        let tld = zone.tlds()[0].clone();
        let query = Message::query(3, tld.child("www").unwrap(), RType::A);
        let target = Ipv4Addr::new(10, 1, 1, 1);
        let id = sim.add_node(
            target,
            GeoPoint::new(0.0, 0.0),
            Box::new(ServerNode::new(AuthServer::new(zone)).with_obs(&registry)),
        );
        let probe = sim.add_node(
            Ipv4Addr::new(10, 0, 0, 99),
            GeoPoint::new(1.0, 1.0),
            Box::new(QueryProbe { target, query, responses: vec![] }),
        );
        sim.schedule_timer(probe, SimDuration::ZERO, 0);
        sim.inject(
            GeoPoint::new(1.0, 1.0),
            Datagram { src: Ipv4Addr::new(10, 1, 1, 2), dst: target, payload: b"junk".into() },
        );
        sim.run_to_completion();
        let node = (sim.node(id) as &dyn std::any::Any).downcast_ref::<ServerNode>().unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("server.queries"), node.server().stats.queries);
        assert_eq!(snap.counter("server.decode_errors"), node.decode_errors);
        assert_eq!(snap.counter("auth.queries"), node.server().stats.queries);
        assert_eq!(snap.counter("auth.referrals"), node.server().stats.referrals);
        assert_eq!(snap.counter("server.decode_errors"), 1);
        assert_eq!(snap.counter("auth.queries"), 1);
    }

    #[test]
    fn deployment_matches_history_counts() {
        let zone = Arc::new(rootzone::build(&RootZoneConfig::small(5)));
        let mut sim = Sim::new(4);
        let per_letter = rootless_zone::history::deployment_on(rootless_util::time::Date::new(2019, 5, 15));
        let fleet = deploy_root_fleet(&mut sim, zone, &per_letter, 1);
        assert_eq!(fleet.instance_count(), 985);
        assert_eq!(fleet.addrs.len(), 13);
    }

    #[test]
    fn resolver_locations_deterministic() {
        assert_eq!(
            resolver_locations(10, 5).iter().map(|g| (g.lat, g.lon)).collect::<Vec<_>>(),
            resolver_locations(10, 5).iter().map(|g| (g.lat, g.lon)).collect::<Vec<_>>()
        );
    }
}
