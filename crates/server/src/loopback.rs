//! RFC 7706: "Decreasing Access Time to Root Servers by Running One on
//! Loopback" — the paper's closest related work (§6) and its third
//! incorporation strategy (§3): *"an operator may simply make the root zone
//! file available to its resolvers via an authoritative server accessible
//! only by the internal recursive resolvers."*
//!
//! A [`LoopbackRoot`] is an [`AuthServer`] plus the freshness discipline the
//! RFC requires: it tracks when its zone copy was loaded and refuses to
//! answer (SERVFAIL) once the copy is older than the expiry bound, so a
//! broken refresh pipeline degrades loudly instead of serving stale data
//! forever.

use rootless_proto::message::{Message, Rcode};
use rootless_util::time::{SimDuration, SimTime};
use rootless_zone::zone::Zone;

use crate::auth::AuthServer;

/// Default maximum age before a loopback root stops answering: the SOA
/// expire value the root zone uses (7 days).
pub const DEFAULT_EXPIRY: SimDuration = SimDuration::from_secs(604_800);

/// A local root-zone instance with freshness tracking.
pub struct LoopbackRoot {
    server: AuthServer,
    loaded_at: SimTime,
    /// Maximum zone age before SERVFAIL.
    pub expiry: SimDuration,
    /// Count of queries refused due to staleness.
    pub stale_refusals: u64,
}

impl LoopbackRoot {
    /// Creates an instance from a verified zone copy loaded at `now`.
    pub fn new(zone: Zone, now: SimTime) -> LoopbackRoot {
        LoopbackRoot {
            server: AuthServer::new(zone),
            loaded_at: now,
            expiry: DEFAULT_EXPIRY,
            stale_refusals: 0,
        }
    }

    /// Installs a fresh zone copy at `now`.
    pub fn refresh(&mut self, zone: Zone, now: SimTime) {
        self.server.reload(zone);
        self.loaded_at = now;
    }

    /// Age of the current copy.
    pub fn age(&self, now: SimTime) -> SimDuration {
        now - self.loaded_at
    }

    /// Whether the copy is still within its expiry bound.
    pub fn is_fresh(&self, now: SimTime) -> bool {
        self.age(now) <= self.expiry
    }

    /// Serial of the loaded copy.
    pub fn serial(&self) -> u32 {
        self.server.zone().serial()
    }

    /// The wrapped server (stats access).
    pub fn server(&self) -> &AuthServer {
        &self.server
    }

    /// Handles a query at `now`, refusing if the copy has expired.
    pub fn handle(&mut self, query: &Message, now: SimTime) -> Message {
        if !self.is_fresh(now) {
            self.stale_refusals += 1;
            return Message::response_to(query, Rcode::ServFail);
        }
        self.server.handle(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rootless_proto::name::Name;
    use rootless_proto::rr::RType;
    use rootless_zone::rootzone::{self, RootZoneConfig};

    fn zone() -> Zone {
        rootzone::build(&RootZoneConfig::small(20))
    }

    #[test]
    fn answers_while_fresh() {
        let mut lb = LoopbackRoot::new(zone(), SimTime::ZERO);
        let q = Message::query(1, Name::parse("bogus-tld").unwrap(), RType::A);
        let resp = lb.handle(&q, SimTime::ZERO + SimDuration::from_days(6));
        assert_eq!(resp.header.rcode, Rcode::NxDomain);
        assert!(lb.is_fresh(SimTime::ZERO + SimDuration::from_days(6)));
    }

    #[test]
    fn servfail_when_stale() {
        let mut lb = LoopbackRoot::new(zone(), SimTime::ZERO);
        let q = Message::query(2, Name::parse("com").unwrap(), RType::NS);
        let resp = lb.handle(&q, SimTime::ZERO + SimDuration::from_days(8));
        assert_eq!(resp.header.rcode, Rcode::ServFail);
        assert_eq!(lb.stale_refusals, 1);
    }

    #[test]
    fn refresh_resets_age() {
        let mut lb = LoopbackRoot::new(zone(), SimTime::ZERO);
        let later = SimTime::ZERO + SimDuration::from_days(8);
        assert!(!lb.is_fresh(later));
        let newer = rootzone::build(&RootZoneConfig { serial: 99, ..RootZoneConfig::small(20) });
        lb.refresh(newer, later);
        assert!(lb.is_fresh(later));
        assert_eq!(lb.serial(), 99);
        assert_eq!(lb.age(later), SimDuration::ZERO);
    }

    #[test]
    fn custom_expiry_respected() {
        let mut lb = LoopbackRoot::new(zone(), SimTime::ZERO);
        lb.expiry = SimDuration::from_hours(48);
        let q = Message::query(3, Name::parse("com").unwrap(), RType::NS);
        assert_eq!(lb.handle(&q, SimTime::ZERO + SimDuration::from_hours(47)).header.rcode, Rcode::NoError);
        assert_eq!(lb.handle(&q, SimTime::ZERO + SimDuration::from_hours(49)).header.rcode, Rcode::ServFail);
    }
}
