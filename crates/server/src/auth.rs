//! The authoritative nameserver state machine (sans-IO).
//!
//! Root and TLD servers in this workspace are [`AuthServer`] values: a zone
//! plus RFC 1034 §4.3.2 response logic (answers, referrals with glue,
//! NXDOMAIN/NODATA with SOA, DNSSEC records on the DO bit) and the query
//! accounting the §2.2 traffic study reads back out.

use std::collections::HashMap;
use std::sync::Arc;

use rootless_obs::metrics::{Counter, Registry};
use rootless_proto::message::{Header, Message, Opcode, Rcode};
use rootless_proto::name::Name;
use rootless_proto::rr::{RClass, RData, RType, Record};
use rootless_proto::wire::Encoder;
use rootless_dnssec::nsec;
use rootless_dnssec::sign;
use rootless_zone::zone::{LookupRef, Zone};

/// Per-server query counters.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Total queries handled.
    pub queries: u64,
    /// Positive answers.
    pub answers: u64,
    /// Referrals to child zones.
    pub referrals: u64,
    /// Authoritative name errors.
    pub nxdomain: u64,
    /// Name exists, type does not.
    pub nodata: u64,
    /// Refused (wrong class, AXFR over UDP, etc.).
    pub refused: u64,
    /// Unsupported opcodes.
    pub notimp: u64,
    /// Malformed queries.
    pub formerr: u64,
    /// Responses truncated to fit the UDP payload limit.
    pub truncated: u64,
    /// Queries per question type.
    pub by_qtype: HashMap<u16, u64>,
    /// Queries per TLD label of the qname (lowercase; "" for the apex) —
    /// the counter behind the §5.3 ".llc" analysis.
    pub by_tld: HashMap<String, u64>,
}

/// Registry-backed mirrors of the [`ServerStats`] counters, shared across
/// clones of one server (anycast fleet instances each clone the handle, so
/// `auth.*` metrics aggregate over the whole fleet).
#[derive(Clone, Debug)]
pub struct AuthObs {
    /// Mirrors [`ServerStats::queries`].
    pub queries: Counter,
    /// Mirrors [`ServerStats::answers`].
    pub answers: Counter,
    /// Mirrors [`ServerStats::referrals`].
    pub referrals: Counter,
    /// Mirrors [`ServerStats::nxdomain`].
    pub nxdomain: Counter,
    /// Mirrors [`ServerStats::nodata`].
    pub nodata: Counter,
    /// Mirrors [`ServerStats::refused`].
    pub refused: Counter,
    /// Mirrors [`ServerStats::truncated`].
    pub truncated: Counter,
}

impl AuthObs {
    /// Registers the `auth.*` counters (idempotent, so every fleet instance
    /// can call this and share the same underlying cells).
    pub fn new(registry: &Registry) -> AuthObs {
        AuthObs {
            queries: registry.counter("auth.queries"),
            answers: registry.counter("auth.answers"),
            referrals: registry.counter("auth.referrals"),
            nxdomain: registry.counter("auth.nxdomain"),
            nodata: registry.counter("auth.nodata"),
            refused: registry.counter("auth.refused"),
            truncated: registry.counter("auth.truncated"),
        }
    }
}

/// An authoritative server for one or more zones (real nameserver hosts
/// serve many zones — the root zone's shared operator hosts rely on this).
///
/// Zones are behind [`Arc`]s so hundreds of anycast instances can share one
/// copy of the ~22K-record root zone.
#[derive(Clone, Debug)]
pub struct AuthServer {
    zones: Vec<Arc<Zone>>,
    /// Whether to include RRSIG/NSEC records when the query sets the DO bit.
    pub dnssec_enabled: bool,
    /// Counters.
    pub stats: ServerStats,
    obs: Option<AuthObs>,
    /// Pooled encoder for response-size checks (truncation); reusing it
    /// keeps [`AuthServer::handle_into`] allocation-free at steady state.
    len_enc: Encoder,
    /// Scratch for the lowercased TLD label so per-TLD accounting only
    /// allocates the first time a TLD is seen.
    tld_scratch: String,
}

impl AuthServer {
    /// Creates a server over one zone.
    pub fn new(zone: Zone) -> AuthServer {
        Self::new_shared(Arc::new(zone))
    }

    /// Creates a server sharing an existing zone copy (anycast fleets).
    pub fn new_shared(zone: Arc<Zone>) -> AuthServer {
        AuthServer {
            zones: vec![zone],
            dnssec_enabled: true,
            stats: ServerStats::default(),
            obs: None,
            len_enc: Encoder::new(),
            tld_scratch: String::new(),
        }
    }

    /// Mirrors this server's counters into `registry` under `auth.*`.
    /// Clones made after this call share the same metric cells.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.obs = Some(AuthObs::new(registry));
    }

    /// Adds another zone this host answers for.
    pub fn add_zone(&mut self, zone: Arc<Zone>) {
        self.zones.push(zone);
    }

    /// The primary (first) zone.
    pub fn zone(&self) -> &Zone {
        &self.zones[0]
    }

    /// The zone with the deepest origin containing `qname`, if any.
    pub fn zone_for(&self, qname: &Name) -> Option<&Arc<Zone>> {
        self.zones
            .iter()
            .filter(|z| qname.is_within(z.origin()))
            .max_by_key(|z| z.origin().label_count())
    }

    /// Replaces the primary zone (a zone reload / transfer completion).
    pub fn reload(&mut self, zone: Zone) {
        self.zones[0] = Arc::new(zone);
    }

    /// Shares the primary zone copy.
    pub fn zone_shared(&self) -> Arc<Zone> {
        Arc::clone(&self.zones[0])
    }

    /// Handles one query message, producing the response. Convenience
    /// wrapper over [`AuthServer::handle_into`] that allocates a fresh
    /// response; the serving runtime reuses one response message instead.
    pub fn handle(&mut self, query: &Message) -> Message {
        let mut resp = Message::default();
        self.handle_into(query, &mut resp);
        resp
    }

    /// Handles one query message into a caller-owned (typically pooled)
    /// response. The response is fully reset first, so the result is
    /// byte-identical to [`AuthServer::handle`] regardless of what `resp`
    /// held before — but its section vectors keep their capacity, which
    /// together with the pooled length-check encoder makes steady-state
    /// serving allocation-free per query.
    pub fn handle_into(&mut self, query: &Message, resp: &mut Message) {
        self.stats.queries += 1;
        if let Some(o) = &self.obs {
            o.queries.inc();
        }
        if query.header.opcode != Opcode::Query {
            self.stats.notimp += 1;
            reset_response(query, Rcode::NotImp, resp);
            return;
        }
        let Some(q) = query.question().cloned() else {
            self.stats.formerr += 1;
            reset_response(query, Rcode::FormErr, resp);
            return;
        };
        *self.stats.by_qtype.entry(q.qtype.to_u16()).or_insert(0) += 1;
        let Some(zone) = self.zone_for(&q.qname).cloned() else {
            // Not authoritative for anything covering this name.
            self.stats.refused += 1;
            if let Some(o) = &self.obs {
                o.refused.inc();
            }
            reset_response(query, Rcode::Refused, resp);
            return;
        };
        {
            let tld_depth = zone.origin().label_count() + 1;
            self.tld_scratch.clear();
            let suffix;
            let label = if q.qname.label_count() >= tld_depth {
                suffix = q.qname.suffix(tld_depth);
                suffix.first_label()
            } else {
                None
            };
            if let Some(l) = label {
                if l.is_ascii() {
                    for &b in l {
                        self.tld_scratch.push(b.to_ascii_lowercase() as char);
                    }
                } else {
                    // Rare non-ASCII label: match the historical lossy
                    // conversion exactly (replacement chars and all).
                    self.tld_scratch
                        .push_str(&String::from_utf8_lossy(l).to_ascii_lowercase());
                }
            }
            if let Some(c) = self.stats.by_tld.get_mut(self.tld_scratch.as_str()) {
                *c += 1;
            } else {
                self.stats.by_tld.insert(self.tld_scratch.clone(), 1);
            }
        }
        if q.qclass != RClass::IN {
            self.stats.refused += 1;
            if let Some(o) = &self.obs {
                o.refused.inc();
            }
            reset_response(query, Rcode::Refused, resp);
            return;
        }
        if q.qtype == RType::AXFR {
            // Zone transfer requires the stream service (axfr module).
            self.stats.refused += 1;
            if let Some(o) = &self.obs {
                o.refused.inc();
            }
            reset_response(query, Rcode::Refused, resp);
            return;
        }
        let want_dnssec = self.dnssec_enabled && query.edns.map(|e| e.dnssec_ok).unwrap_or(false);

        reset_response(query, Rcode::NoError, resp);
        resp.edns = query.edns;
        if q.qtype == RType::ANY {
            // ANY: every RRset at the name (when not below a cut).
            match zone.lookup_ref(&q.qname, RType::SOA) {
                LookupRef::Delegation { ns } => {
                    self.stats.referrals += 1;
                    if let Some(o) = &self.obs {
                        o.referrals.inc();
                    }
                    ns.push_records_into(&mut resp.authorities);
                    zone.glue_for(ns, |set| set.push_records_into(&mut resp.additionals));
                }
                LookupRef::NxDomain => {
                    self.stats.nxdomain += 1;
                    if let Some(o) = &self.obs {
                        o.nxdomain.inc();
                    }
                    resp.header.authoritative = true;
                    resp.header.rcode = Rcode::NxDomain;
                    attach_soa(&zone, resp);
                }
                _ => {
                    self.stats.answers += 1;
                    if let Some(o) = &self.obs {
                        o.answers.inc();
                    }
                    resp.header.authoritative = true;
                    for set in zone.rrsets_at(&q.qname) {
                        if set.rtype != RType::RRSIG || want_dnssec {
                            set.push_records_into(&mut resp.answers);
                        }
                    }
                }
            }
            self.truncate_in_place(query, resp);
            return;
        }
        match zone.lookup_ref(&q.qname, q.qtype) {
            LookupRef::Answer(set) => {
                self.stats.answers += 1;
                if let Some(o) = &self.obs {
                    o.answers.inc();
                }
                resp.header.authoritative = true;
                set.push_records_into(&mut resp.answers);
                if want_dnssec {
                    if let Some(sig) = sign::find_signature(&zone, &set.name, set.rtype) {
                        resp.answers.push(Record::new(set.name.clone(), set.ttl, RData::Rrsig(sig.clone())));
                    }
                }
            }
            LookupRef::Delegation { ns } => {
                self.stats.referrals += 1;
                if let Some(o) = &self.obs {
                    o.referrals.inc();
                }
                // Referrals are not authoritative answers (AA clear).
                ns.push_records_into(&mut resp.authorities);
                if want_dnssec {
                    // DS (or its absence proof) travels with the referral.
                    if let Some(ds) = zone.get(&ns.name, RType::DS) {
                        ds.push_records_into(&mut resp.authorities);
                        if let Some(sig) = sign::find_signature(&zone, &ns.name, RType::DS) {
                            resp.authorities.push(Record::new(ns.name.clone(), ds.ttl, RData::Rrsig(sig.clone())));
                        }
                    }
                }
                zone.glue_for(ns, |set| set.push_records_into(&mut resp.additionals));
            }
            LookupRef::NoData => {
                self.stats.nodata += 1;
                if let Some(o) = &self.obs {
                    o.nodata.inc();
                }
                resp.header.authoritative = true;
                attach_soa(&zone, resp);
            }
            LookupRef::NxDomain => {
                self.stats.nxdomain += 1;
                if let Some(o) = &self.obs {
                    o.nxdomain.inc();
                }
                resp.header.authoritative = true;
                resp.header.rcode = Rcode::NxDomain;
                attach_soa(&zone, resp);
                if want_dnssec {
                    if let Some(denial) = nsec::denial_for(&zone, &q.qname) {
                        let owner = denial.name.clone();
                        let ttl = denial.ttl;
                        resp.authorities.push(denial);
                        if let Some(sig) = sign::find_signature(&zone, &owner, RType::NSEC) {
                            resp.authorities.push(Record::new(owner, ttl, RData::Rrsig(sig.clone())));
                        }
                    }
                }
            }
        }
        self.truncate_in_place(query, resp);
    }

    /// Encoded length via the pooled scratch encoder — same bytes as
    /// [`Message::encoded_len`] without the fresh-encoder allocation.
    fn encoded_len_pooled(&mut self, resp: &Message) -> usize {
        resp.encode_into(&mut self.len_enc);
        self.len_enc.len()
    }

    /// Enforces the UDP payload limit (512 bytes without EDNS, the
    /// advertised size with it). Staged, like real servers: optional
    /// additional-section data (glue) is dropped first; only if the message
    /// still does not fit is it emptied and marked TC so the client retries
    /// over a stream transport (RFC 1035 §4.2.1, RFC 2181 §9).
    fn truncate_in_place(&mut self, query: &Message, resp: &mut Message) {
        let limit = query
            .edns
            .map(|e| e.udp_payload_size.max(512) as usize)
            .unwrap_or(512);
        if self.encoded_len_pooled(resp) <= limit {
            return;
        }
        // Stage 1: shed additionals (glue is an optimization, not a promise).
        while !resp.additionals.is_empty() && self.encoded_len_pooled(resp) > limit {
            resp.additionals.pop();
        }
        if self.encoded_len_pooled(resp) <= limit {
            return;
        }
        self.stats.truncated += 1;
        if let Some(o) = &self.obs {
            o.truncated.inc();
        }
        // Stage 2: empty the message and set TC; header identity (id,
        // opcode, RD), AA, rcode and EDNS carry over unchanged, exactly as
        // a freshly built TC response would.
        resp.answers.clear();
        resp.authorities.clear();
        resp.additionals.clear();
        resp.header.truncated = true;
    }

    /// Fraction of handled queries that were NXDOMAIN — the server-side view
    /// of the junk problem.
    pub fn nxdomain_fraction(&self) -> f64 {
        if self.stats.queries == 0 {
            0.0
        } else {
            self.stats.nxdomain as f64 / self.stats.queries as f64
        }
    }
}

/// Resets `resp` to the skeleton [`Message::response_to`] builds, reusing
/// its buffers: same header identity and rcode, the query's questions
/// cloned into the existing vector, all record sections emptied (capacity
/// kept), EDNS cleared.
fn reset_response(query: &Message, rcode: Rcode, resp: &mut Message) {
    resp.header = Header {
        id: query.header.id,
        response: true,
        opcode: query.header.opcode,
        recursion_desired: query.header.recursion_desired,
        rcode,
        ..Header::default()
    };
    resp.questions.clone_from(&query.questions);
    resp.answers.clear();
    resp.authorities.clear();
    resp.additionals.clear();
    resp.edns = None;
}

fn attach_soa(zone: &Zone, resp: &mut Message) {
    if let Some(set) = zone.get(zone.origin(), RType::SOA) {
        set.push_records_into(&mut resp.authorities);
    }
}

/// Builds a root [`AuthServer`] from a root zone plus hints glue sanity
/// checks (convenience used across experiments).
pub fn root_server(zone: Zone) -> AuthServer {
    assert!(zone.origin().is_root(), "root server needs the root zone");
    AuthServer::new(zone)
}

/// Builds a TLD authoritative server with a minimal synthetic child zone:
/// the TLD apex SOA/NS plus `A` records for a set of second-level domains.
/// Enough for end-to-end resolution through the hierarchy.
pub fn tld_server(tld: &Name, sld_count: usize, seed: u64) -> AuthServer {
    use rootless_util::rng::DetRng;
    let mut rng = DetRng::seed_from_u64(seed ^ tld.to_string().len() as u64);
    let mut zone = Zone::new(tld.clone());
    let ns_host = tld.child("ns1").unwrap();
    zone.insert(Record::new(
        tld.clone(),
        86_400,
        RData::Soa(rootless_proto::rr::Soa {
            mname: ns_host.clone(),
            rname: tld.child("hostmaster").unwrap(),
            serial: 1,
            refresh: 1_800,
            retry: 900,
            expire: 604_800,
            minimum: 3_600,
        }),
    ))
    .unwrap();
    zone.insert(Record::new(tld.clone(), 172_800, RData::Ns(ns_host.clone()))).unwrap();
    zone.insert(Record::new(ns_host, 172_800, RData::A(random_v4(&mut rng)))).unwrap();
    for i in 0..sld_count {
        let sld = tld.child(format!("domain{i}")).unwrap();
        let www = sld.child("www").unwrap();
        zone.insert(Record::new(sld.clone(), 3_600, RData::A(random_v4(&mut rng)))).unwrap();
        zone.insert(Record::new(www, 3_600, RData::A(random_v4(&mut rng)))).unwrap();
    }
    AuthServer::new(zone)
}

fn random_v4(rng: &mut rootless_util::rng::DetRng) -> std::net::Ipv4Addr {
    std::net::Ipv4Addr::new(
        (rng.below(190) + 5) as u8,
        rng.below(256) as u8,
        rng.below(256) as u8,
        (rng.below(253) + 1) as u8,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rootless_dnssec::keys::ZoneKey;
    use rootless_proto::message::Edns;
    use rootless_zone::rootzone::{self, RootZoneConfig};

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn server() -> AuthServer {
        root_server(rootzone::build(&RootZoneConfig::small(40)))
    }

    fn signed_server() -> (AuthServer, ZoneKey) {
        let key = ZoneKey::generate(Name::root(), true, 5);
        let zone = rootzone::build(&RootZoneConfig::small(40));
        let chained = rootless_dnssec::nsec::build_chain(&zone);
        let signed = rootless_dnssec::sign::sign_zone(&chained, &key, 0, u32::MAX);
        (root_server(signed), key)
    }

    #[test]
    fn referral_for_existing_tld() {
        let mut s = server();
        let tld = s.zone().tlds()[0].clone();
        let qname = tld.child("www").unwrap().child("example").unwrap();
        let resp = s.handle(&Message::query(1, qname, RType::A));
        assert_eq!(resp.header.rcode, Rcode::NoError);
        assert!(!resp.header.authoritative, "referrals clear AA");
        assert!(resp.answers.is_empty());
        assert!(!resp.authorities.is_empty());
        assert!(resp.authorities.iter().all(|r| r.rtype() == RType::NS));
        assert!(!resp.additionals.is_empty(), "glue expected");
        assert_eq!(s.stats.referrals, 1);
    }

    #[test]
    fn nxdomain_for_bogus_tld() {
        let mut s = server();
        let resp = s.handle(&Message::query(2, n("www.example.bogus-tld-zzz"), RType::A));
        assert_eq!(resp.header.rcode, Rcode::NxDomain);
        assert!(resp.header.authoritative);
        assert!(resp.authorities.iter().any(|r| r.rtype() == RType::SOA));
        assert_eq!(s.stats.nxdomain, 1);
        assert!((s.nxdomain_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn apex_ns_answer() {
        let mut s = server();
        let resp = s.handle(&Message::query(3, Name::root(), RType::NS));
        assert!(resp.header.authoritative);
        assert_eq!(resp.answers.len(), 13);
        assert_eq!(s.stats.answers, 1);
    }

    #[test]
    fn nodata_for_apex_txt() {
        let mut s = server();
        let resp = s.handle(&Message::query(4, Name::root(), RType::TXT));
        assert_eq!(resp.header.rcode, Rcode::NoError);
        assert!(resp.answers.is_empty());
        assert!(resp.authorities.iter().any(|r| r.rtype() == RType::SOA));
        assert_eq!(s.stats.nodata, 1);
    }

    #[test]
    fn non_in_class_refused() {
        let mut s = server();
        let mut q = Message::query(5, n("version.bind"), RType::TXT);
        q.questions[0].qclass = RClass::CH;
        let resp = s.handle(&q);
        assert_eq!(resp.header.rcode, Rcode::Refused);
        assert_eq!(s.stats.refused, 1);
    }

    #[test]
    fn notimp_for_update() {
        let mut s = server();
        let mut q = Message::query(6, n("com"), RType::NS);
        q.header.opcode = Opcode::Update;
        let resp = s.handle(&q);
        assert_eq!(resp.header.rcode, Rcode::NotImp);
    }

    #[test]
    fn axfr_over_udp_refused() {
        let mut s = server();
        let resp = s.handle(&Message::query(7, Name::root(), RType::AXFR));
        assert_eq!(resp.header.rcode, Rcode::Refused);
    }

    #[test]
    fn dnssec_referral_carries_ds_and_rrsig() {
        let (mut s, _key) = signed_server();
        let tld = s.zone().tlds()[0].clone();
        let mut q = Message::query(8, tld.child("x").unwrap(), RType::A);
        q.edns = Some(Edns { dnssec_ok: true, ..Edns::default() });
        let resp = s.handle(&q);
        let has_ds = resp.authorities.iter().any(|r| r.rtype() == RType::DS);
        let has_sig = resp.authorities.iter().any(|r| r.rtype() == RType::RRSIG);
        // ~90% of TLDs are signed in the fixture; this one may not be, but
        // signatures must appear whenever DS does.
        if has_ds {
            assert!(has_sig, "DS without covering RRSIG");
        }
    }

    #[test]
    fn dnssec_nxdomain_carries_nsec() {
        let (mut s, _key) = signed_server();
        let mut q = Message::query(9, n("nonexistent-tld-xyz"), RType::A);
        q.edns = Some(Edns { dnssec_ok: true, ..Edns::default() });
        let resp = s.handle(&q);
        assert_eq!(resp.header.rcode, Rcode::NxDomain);
        assert!(resp.authorities.iter().any(|r| r.rtype() == RType::NSEC), "NSEC expected");
        assert!(resp.authorities.iter().any(|r| r.rtype() == RType::RRSIG), "RRSIG expected");
    }

    #[test]
    fn no_dnssec_records_without_do_bit() {
        let (mut s, _key) = signed_server();
        let resp = s.handle(&Message::query(10, n("nonexistent-tld-xyz"), RType::A));
        assert!(!resp.authorities.iter().any(|r| r.rtype() == RType::NSEC));
    }

    #[test]
    fn qtype_accounting() {
        let mut s = server();
        s.handle(&Message::query(11, n("com"), RType::A));
        s.handle(&Message::query(12, n("com"), RType::AAAA));
        s.handle(&Message::query(13, n("org"), RType::A));
        assert_eq!(s.stats.by_qtype[&RType::A.to_u16()], 2);
        assert_eq!(s.stats.by_qtype[&RType::AAAA.to_u16()], 1);
    }

    #[test]
    fn tld_accounting_lowercases() {
        let mut s = server();
        let tld = s.zone().tlds()[0].clone();
        let label = tld.to_string().trim_end_matches('.').to_string();
        s.handle(&Message::query(14, tld.child("WWW").unwrap(), RType::A));
        s.handle(&Message::query(15, n(&label.to_uppercase()), RType::NS));
        assert_eq!(s.stats.by_tld[&label], 2);
    }

    #[test]
    fn tld_server_answers_for_sld() {
        let tld = n("shop");
        let mut s = tld_server(&tld, 5, 1);
        let resp = s.handle(&Message::query(16, n("www.domain3.shop"), RType::A));
        assert_eq!(resp.header.rcode, Rcode::NoError);
        assert_eq!(resp.answers.len(), 1);
        assert!(resp.header.authoritative);
        let missing = s.handle(&Message::query(17, n("www.domain9.shop"), RType::A));
        assert_eq!(missing.header.rcode, Rcode::NxDomain);
    }

    #[test]
    fn any_query_returns_all_apex_sets() {
        let mut s = server();
        let mut q = Message::query(40, Name::root(), RType::ANY);
        q.edns = Some(Edns { udp_payload_size: 4096, ..Edns::default() });
        let resp = s.handle(&q);
        assert!(resp.header.authoritative);
        let types: std::collections::HashSet<RType> =
            resp.answers.iter().map(|r| r.rtype()).collect();
        assert!(types.contains(&RType::SOA));
        assert!(types.contains(&RType::NS));
    }

    #[test]
    fn any_query_below_cut_refers() {
        let mut s = server();
        let tld = s.zone().tlds()[0].clone();
        let mut q = Message::query(41, tld.child("x").unwrap(), RType::ANY);
        q.edns = Some(Edns { udp_payload_size: 4096, ..Edns::default() });
        let resp = s.handle(&q);
        assert!(resp.answers.is_empty());
        assert!(resp.authorities.iter().any(|r| r.rtype() == RType::NS));
    }

    fn fat_txt_server() -> AuthServer {
        // A name holding enough TXT data to blow the 512-byte UDP limit.
        let mut zone = rootless_zone::zone::Zone::new(n("big"));
        for i in 0..12 {
            zone.insert(rootless_proto::rr::Record::new(
                n("fat.big"),
                60,
                rootless_proto::rr::RData::Txt(vec![format!("padding-string-{i:04}-{}", "x".repeat(40)).into_bytes()]),
            ))
            .unwrap();
        }
        AuthServer::new(zone)
    }

    #[test]
    fn oversized_response_truncated_without_edns() {
        let mut s = fat_txt_server();
        let resp = s.handle(&Message::query(42, n("fat.big"), RType::TXT));
        assert!(resp.header.truncated, "expected TC bit");
        assert!(resp.answers.is_empty());
        assert!(resp.encoded_len() <= 512);
        assert_eq!(s.stats.truncated, 1);
    }

    #[test]
    fn edns_payload_size_lifts_truncation() {
        let mut s = fat_txt_server();
        let mut q = Message::query(43, n("fat.big"), RType::TXT);
        q.edns = Some(Edns { udp_payload_size: 4096, ..Edns::default() });
        let resp = s.handle(&q);
        assert!(!resp.header.truncated);
        assert_eq!(resp.answers.len(), 12);
        assert_eq!(s.stats.truncated, 0);
    }

    #[test]
    fn root_referral_fits_in_512() {
        // The classic constraint: root referrals are engineered to fit
        // unsigned UDP responses.
        let mut s = server();
        let tld = s.zone().tlds()[0].clone();
        let resp = s.handle(&Message::query(44, tld.child("www").unwrap(), RType::A));
        assert!(!resp.header.truncated, "plain referral must fit 512B");
        assert!(resp.encoded_len() <= 512, "{} bytes", resp.encoded_len());
    }

    #[test]
    fn multi_zone_host_routes_by_deepest_origin() {
        // A shared operator host: authoritative for the root AND two TLDs.
        let mut s = server();
        let shop = tld_server(&n("shop"), 2, 1);
        let blog = tld_server(&n("blog"), 2, 2);
        s.add_zone(shop.zone_shared());
        s.add_zone(blog.zone_shared());
        // A name under "shop" answers from the shop zone, not via a root
        // referral/NXDOMAIN.
        let resp = s.handle(&Message::query(30, n("www.domain0.shop"), RType::A));
        assert_eq!(resp.header.rcode, Rcode::NoError);
        assert!(resp.header.authoritative);
        assert_eq!(resp.answers.len(), 1);
        let resp = s.handle(&Message::query(31, n("www.domain1.blog"), RType::A));
        assert_eq!(resp.answers.len(), 1);
        // Everything else still gets root service.
        let resp = s.handle(&Message::query(32, n("x.not-a-tld-zzz"), RType::A));
        assert_eq!(resp.header.rcode, Rcode::NxDomain);
    }

    #[test]
    fn reload_swaps_zone() {
        let mut s = server();
        let old_serial = s.zone().serial();
        let newer = rootzone::build(&RootZoneConfig { serial: old_serial + 5, ..RootZoneConfig::small(40) });
        s.reload(newer);
        assert_eq!(s.zone().serial(), old_serial + 5);
    }
}
