//! # rootless-server
//!
//! Authoritative-server substrate: what the paper proposes to *decommission*
//! (the root fleet) and what replaces it (local instances).
//!
//! * [`auth`] — the sans-IO authoritative state machine with RFC 1034
//!   referral logic, DNSSEC-on-DO responses and per-qtype/per-TLD query
//!   accounting (the measurement points for the §2.2 traffic study).
//! * [`node`] — netsim adapters, including [`node::deploy_root_fleet`],
//!   which stands up all 13 letters at their real anycast addresses with
//!   per-letter instance counts from the Fig. 2 model.
//! * [`axfr`] — zone transfer (one of the §3 distribution options).
//! * [`loopback`] — the RFC 7706 local root instance with freshness rules.

#![warn(missing_docs)]

pub mod auth;
pub mod axfr;
pub mod loopback;
pub mod node;

pub use auth::{AuthServer, ServerStats};
pub use loopback::LoopbackRoot;
pub use node::{deploy_root_fleet, RootDeployment, ServerNode};
