//! Property tests for the zone crate: master-file round trips, diff
//! apply/compute inverses, and lookup invariants over generated zones.

use proptest::prelude::*;
use rootless_proto::name::Name;
use rootless_proto::rr::RType;
use rootless_zone::diff::ZoneDiff;
use rootless_zone::rootzone::{self, RootZoneConfig};
use rootless_zone::zone::Lookup;
use rootless_zone::{master, RrKey};

fn cfg(tlds: usize, seed: u64, serial: u32) -> RootZoneConfig {
    RootZoneConfig { seed, serial, ..RootZoneConfig::small(tlds.max(1)) }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn master_file_roundtrip(tlds in 1usize..60, seed in 0u64..1000) {
        let zone = rootzone::build(&cfg(tlds, seed, 1));
        let text = master::serialize(&zone);
        let back = master::parse(&text, Name::root()).unwrap();
        prop_assert_eq!(back, zone);
    }

    #[test]
    fn master_text_is_a_fixed_point(
        tlds in 1usize..50,
        seed in 0u64..500,
        serial in 1u32..4000,
        signed in 0u32..=10,
        v6 in 0u32..=10,
    ) {
        // Full loop stability: parse(serialize(zone)) then serialize again
        // must reproduce the exact text, and parsing that text must
        // reproduce the exact zone — across the signed/glue config space.
        let c = RootZoneConfig {
            signed_fraction: signed as f64 / 10.0,
            ipv6_glue_fraction: v6 as f64 / 10.0,
            ..cfg(tlds, seed, serial)
        };
        let zone = rootzone::build(&c);
        let text = master::serialize(&zone);
        let parsed = master::parse(&text, Name::root()).unwrap();
        let text2 = master::serialize(&parsed);
        prop_assert_eq!(&text2, &text, "serialize∘parse must be identity on text");
        let parsed2 = master::parse(&text2, Name::root()).unwrap();
        prop_assert_eq!(parsed2, parsed, "parse∘serialize must be identity on zones");
    }

    #[test]
    fn diff_apply_is_inverse_of_compute(
        a_tlds in 1usize..50,
        b_tlds in 1usize..50,
        seed in 0u64..100,
    ) {
        let old = rootzone::build(&cfg(a_tlds, seed, 1));
        let new = rootzone::build(&cfg(b_tlds, seed, 2));
        let diff = ZoneDiff::compute(&old, &new);
        let mut z = old.clone();
        diff.apply(&mut z).unwrap();
        prop_assert_eq!(z, new);
    }

    #[test]
    fn diff_wire_roundtrip(a in 1usize..40, b in 1usize..40, seed in 0u64..100) {
        let old = rootzone::build(&cfg(a, seed, 1));
        let new = rootzone::build(&cfg(b, seed, 2));
        let diff = ZoneDiff::compute(&old, &new);
        prop_assert_eq!(ZoneDiff::decode(&diff.encode()).unwrap(), diff);
    }

    #[test]
    fn lookup_never_panics_and_classifies(
        tlds in 1usize..40,
        seed in 0u64..100,
        label in "[a-z]{1,12}",
        depth in 0usize..3,
    ) {
        let zone = rootzone::build(&cfg(tlds, seed, 1));
        let mut qname = Name::parse(&label).unwrap();
        for i in 0..depth {
            qname = qname.child(format!("l{i}")).unwrap();
        }
        match zone.lookup(&qname, RType::A) {
            Lookup::Delegation { ns, .. } => {
                // The cut must be an ancestor of the query.
                prop_assert!(qname.is_within(&ns.name));
                prop_assert_eq!(ns.rtype, RType::NS);
            }
            Lookup::NxDomain => {
                // No delegation may cover the name.
                let tld = qname.tld().unwrap();
                prop_assert!(zone.get(&tld, RType::NS).is_none());
            }
            Lookup::Answer(_) | Lookup::NoData => {}
        }
    }

    #[test]
    fn canonical_iteration_is_sorted(tlds in 1usize..40, seed in 0u64..100) {
        let zone = rootzone::build(&cfg(tlds, seed, 1));
        let keys: Vec<RrKey> = zone.rrsets().map(|s| s.key()).collect();
        for w in keys.windows(2) {
            prop_assert!(w[0] < w[1], "{:?} !< {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn delegation_records_are_self_consistent(tlds in 2usize..40, seed in 0u64..100) {
        let zone = rootzone::build(&cfg(tlds, seed, 1));
        for tld in zone.tlds() {
            let records = zone.delegation_records(&tld);
            // Every NS target with glue must be one of the returned A/AAAAs'
            // owners; every record is either owned by the TLD or glue.
            for r in &records {
                let ok = r.name == tld || records.iter().any(|ns| {
                    matches!(&ns.rdata, rootless_proto::rr::RData::Ns(t) if *t == r.name)
                });
                prop_assert!(ok, "stray record {r}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn timeline_snapshots_consistent(
        days in 2u64..30,
        day_a in 0u64..29,
        seed in 0u64..50,
    ) {
        use rootless_util::time::Date;
        use rootless_zone::churn::{ChurnConfig, Timeline};
        let day_a = day_a.min(days - 1);
        let t = Timeline::generate(
            RootZoneConfig { seed, ..RootZoneConfig::small(40) },
            ChurnConfig { seed: seed ^ 1, ..ChurnConfig::default() },
            Date::new(2019, 1, 1),
            days,
        );
        let snap = t.snapshot(day_a);
        // Zone TLDs == active set.
        let zone_tlds: std::collections::BTreeSet<String> =
            snap.tlds().iter().map(|n| n.to_string()).collect();
        let active: std::collections::BTreeSet<String> =
            t.active_tlds(day_a).iter().map(|n| n.to_string()).collect();
        prop_assert_eq!(zone_tlds, active);
        // Serial = base + day.
        prop_assert_eq!(snap.serial(), t.base.serial + day_a as u32);
        // Same-day reachability is total.
        for idx in t.active_indices(day_a).into_iter().take(10) {
            prop_assert!(t.reachable_with_stale_file(idx, day_a, day_a));
        }
    }
}
