//! Day-over-day root zone churn.
//!
//! §5.2 of the paper measures how *stable* the root zone is: across April
//! 2019 all but five TLDs kept at least one nameserver IP constant the whole
//! month (the five are NeuStar-run TLDs that slowly rotate their nameserver
//! addresses), a 14-day-stale file never loses a TLD, and a full year of
//! staleness loses only ~50 TLDs (3.3%). §5.3 adds the perspective of newly
//! delegated TLDs.
//!
//! This module generates a deterministic timeline of daily zone versions
//! with exactly those dynamics:
//!
//! * **adds/deletes** — Poisson-thinned events at roughly one per month each,
//! * **rotators** — a configurable handful of TLDs whose nameserver IPs
//!   rotate on a staggered schedule (one host every `rotator_stagger` days,
//!   each host changing every `rotator_period` days), so a ≤14-day-old file
//!   always overlaps with a live nameserver but a month-old one does not
//!   (the paper's five NeuStar TLDs),
//! * **migrations** — occasional TLDs that renumber their nameservers one
//!   host every `migration_step_days`, slow enough that any single month
//!   keeps an overlap but a year does not.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use rootless_proto::name::Name;
use rootless_proto::rr::{Ds, RData, Record, Soa};
use rootless_util::rng::DetRng;
use rootless_util::time::Date;

use crate::rootzone::{self, Delegation, RootZoneConfig, TldPool, DELEGATION_TTL, DS_TTL};
use crate::zone::Zone;

/// Churn-rate configuration.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Probability a new TLD is delegated on a given day (~1/month).
    pub add_rate_per_day: f64,
    /// Probability an existing TLD is removed on a given day (~1/month).
    pub delete_rate_per_day: f64,
    /// Probability a nameserver-renumbering migration starts on a given day
    /// (~38/year, so migrations+deletes ≈ the paper's 50 lost TLDs/year).
    pub migration_rate_per_day: f64,
    /// Days between successive host renumberings within one migration.
    pub migration_step_days: u64,
    /// Number of rotator TLDs (the paper found five).
    pub rotator_count: usize,
    /// Days between one rotator host's address changes.
    pub rotator_period: u64,
    /// Stagger between successive hosts' change days.
    pub rotator_stagger: u64,
    /// Seed for event generation.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            add_rate_per_day: 1.0 / 30.0,
            delete_rate_per_day: 1.0 / 30.0,
            migration_rate_per_day: 38.0 / 365.0,
            migration_step_days: 12,
            rotator_count: 5,
            rotator_period: 28,
            rotator_stagger: 7,
            seed: 0xC4A2_2019,
        }
    }
}

/// Events on one day of the timeline.
#[derive(Clone, Debug, Default)]
pub struct DayEvents {
    /// Pool indices delegated this day.
    pub added: Vec<usize>,
    /// Pool indices removed this day.
    pub deleted: Vec<usize>,
    /// Pool indices whose nameserver migration starts this day.
    pub migrations_started: Vec<usize>,
}

/// A deterministic multi-day history of the root zone.
pub struct Timeline {
    /// Base zone configuration (day-0 zone).
    pub base: RootZoneConfig,
    /// Churn configuration.
    pub churn: ChurnConfig,
    /// Calendar date of day 0.
    pub start: Date,
    pool: TldPool,
    days: Vec<DayEvents>,
    /// Pool indices of rotator TLDs.
    rotators: Vec<usize>,
    /// Migration start days per pool index.
    migrations: HashMap<usize, Vec<u64>>,
}

impl Timeline {
    /// Generates a timeline of `horizon_days` days starting at `start`.
    pub fn generate(base: RootZoneConfig, churn: ChurnConfig, start: Date, horizon_days: u64) -> Timeline {
        // Pool sized for worst-case additions.
        let pool = TldPool::new(base.tld_count + horizon_days as usize + 8, base.seed);
        let mut rng = DetRng::seed_from_u64(churn.seed);

        // Initial active set: indices 0..tld_count.
        let mut active: Vec<usize> = (0..base.tld_count).collect();
        let mut next_new = base.tld_count;

        // Rotators: dedicated-host TLDs from the initial set, skipping the
        // legacy block at the front.
        let mut rotators = Vec::new();
        let mut idx = 30;
        while rotators.len() < churn.rotator_count && idx < base.tld_count {
            let d = rootzone::delegation_for(pool.label(idx), &base);
            if d.dedicated {
                rotators.push(idx);
            }
            idx += 1;
        }

        let mut days = Vec::with_capacity(horizon_days as usize);
        let mut migrations: HashMap<usize, Vec<u64>> = HashMap::new();
        for day in 0..horizon_days {
            let mut ev = DayEvents::default();
            if rng.chance(churn.add_rate_per_day) {
                ev.added.push(next_new);
                active.push(next_new);
                next_new += 1;
            }
            if rng.chance(churn.delete_rate_per_day) && active.len() > 1 {
                // Never delete legacy gTLDs (first 22) or rotators.
                for _ in 0..16 {
                    let pos = rng.index(active.len());
                    let cand = active[pos];
                    if cand >= 22 && !rotators.contains(&cand) {
                        ev.deleted.push(cand);
                        active.swap_remove(pos);
                        break;
                    }
                }
            }
            if rng.chance(churn.migration_rate_per_day) {
                // Migrate a random active dedicated-host TLD (not a rotator).
                for _ in 0..32 {
                    let cand = active[rng.index(active.len())];
                    if rotators.contains(&cand) {
                        continue;
                    }
                    let d = rootzone::delegation_for(pool.label(cand), &base);
                    if d.dedicated {
                        ev.migrations_started.push(cand);
                        migrations.entry(cand).or_default().push(day);
                        break;
                    }
                }
            }
            days.push(ev);
        }

        Timeline { base, churn, start, pool, days, rotators, migrations }
    }

    /// Horizon in days.
    pub fn horizon(&self) -> u64 {
        self.days.len() as u64
    }

    /// Calendar date of `day`.
    pub fn date(&self, day: u64) -> Date {
        self.start.plus_days(day as i64)
    }

    /// Events of one day.
    pub fn events(&self, day: u64) -> &DayEvents {
        &self.days[day as usize]
    }

    /// The rotator TLD names.
    pub fn rotator_names(&self) -> Vec<Name> {
        self.rotators.iter().map(|&i| Name::parse(self.pool.label(i)).unwrap()).collect()
    }

    /// Pool indices active on `day` (0-based; day must be < horizon).
    pub fn active_indices(&self, day: u64) -> Vec<usize> {
        let mut active: Vec<usize> = (0..self.base.tld_count).collect();
        let mut deleted: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for d in 0..=day.min(self.horizon().saturating_sub(1)) {
            for &a in &self.days[d as usize].added {
                active.push(a);
            }
            for &r in &self.days[d as usize].deleted {
                deleted.insert(r);
            }
        }
        active.retain(|i| !deleted.contains(i));
        active
    }

    /// TLD names active on `day`.
    pub fn active_tlds(&self, day: u64) -> Vec<Name> {
        self.active_indices(day)
            .into_iter()
            .map(|i| Name::parse(self.pool.label(i)).unwrap())
            .collect()
    }

    /// The IP generation of host slot `slot` of TLD `index` on `day`:
    /// 0 until its first change point, then incrementing.
    fn host_generation(&self, index: usize, slot: usize, day: u64) -> u64 {
        let mut gen = 0u64;
        if let Some(pos) = self.rotators.iter().position(|&r| r == index) {
            // Staggered rotation: host `slot` of rotator `pos` changes at
            // days ≡ (pos*3 + slot*stagger) mod period.
            let offset = (pos as u64 * 3 + slot as u64 * self.churn.rotator_stagger) % self.churn.rotator_period;
            if day >= offset {
                gen += (day - offset) / self.churn.rotator_period + 1;
            }
        }
        if let Some(starts) = self.migrations.get(&index) {
            for &s in starts {
                let change_day = s + slot as u64 * self.churn.migration_step_days;
                if day >= change_day {
                    gen += 1;
                }
            }
        }
        gen
    }

    /// The nameserver (host, IPv4) pairs of TLD pool-index `index` on `day`.
    /// Cheap: does not build a zone.
    pub fn nameserver_ips(&self, index: usize, day: u64) -> Vec<(Name, Ipv4Addr)> {
        let d = rootzone::delegation_for(self.pool.label(index), &self.base);
        d.hosts
            .iter()
            .enumerate()
            .map(|(slot, host)| {
                let gen = self.host_generation(index, slot, day);
                (host.clone(), self.host_ip(host, gen))
            })
            .collect()
    }

    fn host_ip(&self, host: &Name, gen: u64) -> Ipv4Addr {
        // Generation 0 matches the base builder's addressing.
        rootzone::host_v4(host, self.base.seed ^ (gen.wrapping_mul(0x9e37_79b9)))
    }

    /// The delegation shape of pool index `index`.
    pub fn delegation(&self, index: usize) -> Delegation {
        rootzone::delegation_for(self.pool.label(index), &self.base)
    }

    /// Builds the full zone as of `day`. Serial = base serial + day.
    pub fn snapshot(&self, day: u64) -> Zone {
        let mut zone = Zone::new(Name::root());
        zone.insert(Record::new(
            Name::root(),
            rootzone::SOA_TTL,
            RData::Soa(Soa {
                mname: Name::parse("a.root-servers.net").unwrap(),
                rname: Name::parse("nstld.verisign-grs.com").unwrap(),
                serial: self.base.serial + day as u32,
                refresh: 1_800,
                retry: 900,
                expire: 604_800,
                minimum: 86_400,
            }),
        ))
        .unwrap();
        for (name, v4, v6) in crate::hints::RootHints::standard().servers {
            zone.insert(Record::new(Name::root(), rootzone::APEX_NS_TTL, RData::Ns(name.clone()))).unwrap();
            zone.insert(Record::new(name.clone(), DELEGATION_TTL, RData::A(v4))).unwrap();
            zone.insert(Record::new(name, DELEGATION_TTL, RData::Aaaa(v6))).unwrap();
        }
        for index in self.active_indices(day) {
            let d = self.delegation(index);
            for (slot, host) in d.hosts.iter().enumerate() {
                zone.insert(Record::new(d.name.clone(), DELEGATION_TTL, RData::Ns(host.clone()))).unwrap();
                let gen = self.host_generation(index, slot, day);
                zone.insert(Record::new(host.clone(), DELEGATION_TTL, RData::A(self.host_ip(host, gen)))).unwrap();
            }
            for k in 0..d.ds_count {
                let mut rng = DetRng::seed_from_u64(self.base.seed ^ simple_hash(self.pool.label(index)) ^ (0xd5 + k as u64));
                let digest: Vec<u8> = (0..32).map(|_| rng.next_u64() as u8).collect();
                zone.insert(Record::new(
                    d.name.clone(),
                    DS_TTL,
                    RData::Ds(Ds { key_tag: rng.below(65_536) as u16, algorithm: 250, digest_type: 2, digest }),
                ))
                .unwrap();
            }
        }
        zone
    }

    /// True if a resolver holding the zone from `file_day` can still reach
    /// TLD pool-index `index` on `now_day`: the TLD is active on both days
    /// and at least one nameserver IP is unchanged (§5.2's criterion).
    pub fn reachable_with_stale_file(&self, index: usize, file_day: u64, now_day: u64) -> bool {
        let active_then: std::collections::HashSet<usize> = self.active_indices(file_day).into_iter().collect();
        let active_now: std::collections::HashSet<usize> = self.active_indices(now_day).into_iter().collect();
        if !active_then.contains(&index) || !active_now.contains(&index) {
            return false;
        }
        let then = self.nameserver_ips(index, file_day);
        let now = self.nameserver_ips(index, now_day);
        then.iter().any(|(h, ip)| now.iter().any(|(h2, ip2)| h == h2 && ip == ip2))
    }
}

fn simple_hash(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_timeline(days: u64) -> Timeline {
        Timeline::generate(
            RootZoneConfig::small(120),
            ChurnConfig::default(),
            Date::new(2019, 4, 1),
            days,
        )
    }

    #[test]
    fn deterministic_generation() {
        let a = tiny_timeline(60);
        let b = tiny_timeline(60);
        assert_eq!(a.snapshot(30), b.snapshot(30));
    }

    #[test]
    fn serial_advances_daily() {
        let t = tiny_timeline(10);
        assert_eq!(t.snapshot(0).serial() + 5, t.snapshot(5).serial());
    }

    #[test]
    fn day_zero_has_configured_tld_count() {
        let t = tiny_timeline(5);
        assert_eq!(t.active_indices(0).len(), 120 + t.events(0).added.len() - t.events(0).deleted.len());
    }

    #[test]
    fn adds_and_deletes_change_active_set() {
        let t = tiny_timeline(365);
        let mut adds = 0;
        let mut dels = 0;
        for d in 0..365 {
            adds += t.events(d).added.len();
            dels += t.events(d).deleted.len();
        }
        // ~12/year each; loose bounds.
        assert!((3..30).contains(&adds), "adds {adds}");
        assert!((3..30).contains(&dels), "deletes {dels}");
        assert_eq!(t.active_indices(364).len(), 120 + adds - dels);
    }

    #[test]
    fn rotator_hosts_rotate_but_overlap_within_14_days() {
        let t = tiny_timeline(120);
        for &rot in &t.rotators {
            // Same day: trivially reachable.
            assert!(t.reachable_with_stale_file(rot, 60, 60));
            // 14-day-old file still overlaps (§5.2).
            assert!(t.reachable_with_stale_file(rot, 60, 74), "rotator {rot} lost at 14 days");
            // A file ~2 periods old does not.
            assert!(!t.reachable_with_stale_file(rot, 0, 119), "rotator {rot} still reachable at 119 days");
        }
    }

    #[test]
    fn non_rotator_stable_over_a_month() {
        let t = tiny_timeline(40);
        let rot: std::collections::HashSet<usize> = t.rotators.iter().copied().collect();
        let migrated: std::collections::HashSet<usize> = t.migrations.keys().copied().collect();
        let mut checked = 0;
        for index in t.active_indices(0) {
            if rot.contains(&index) || migrated.contains(&index) {
                continue;
            }
            if !t.active_indices(39).contains(&index) {
                continue; // deleted during window
            }
            assert!(t.reachable_with_stale_file(index, 0, 39), "stable TLD {index} lost");
            checked += 1;
        }
        assert!(checked > 100);
    }

    #[test]
    fn migration_eventually_breaks_reachability() {
        // Force a migration-heavy timeline.
        let churn = ChurnConfig { migration_rate_per_day: 0.5, ..ChurnConfig::default() };
        let t = Timeline::generate(RootZoneConfig::small(100), churn, Date::new(2018, 4, 1), 400);
        // Find a TLD that migrated early.
        let migrated_early: Vec<usize> = t
            .migrations
            .iter()
            .filter(|(_, starts)| starts.iter().any(|&s| s < 50))
            .map(|(&i, _)| i)
            .collect();
        assert!(!migrated_early.is_empty());
        let mut broken = 0;
        for &index in &migrated_early {
            if t.active_indices(399).contains(&index) && !t.reachable_with_stale_file(index, 0, 399) {
                broken += 1;
            }
        }
        assert!(broken > 0, "year-old file should lose migrated TLDs");
    }

    #[test]
    fn snapshot_contains_active_tlds_only() {
        let t = tiny_timeline(200);
        let zone = t.snapshot(199);
        let zone_tlds: std::collections::HashSet<Name> = zone.tlds().into_iter().collect();
        let active: std::collections::HashSet<Name> = t.active_tlds(199).into_iter().collect();
        assert_eq!(zone_tlds, active);
    }

    #[test]
    fn consecutive_snapshots_differ_little() {
        let t = tiny_timeline(30);
        let a = t.snapshot(0);
        let b = t.snapshot(1);
        let diff = crate::diff::ZoneDiff::compute(&a, &b);
        // SOA always changes; churn should touch at most a few RRsets.
        assert!(diff.touched() < 30, "daily diff touched {}", diff.touched());
    }

    #[test]
    fn date_mapping() {
        let t = tiny_timeline(40);
        assert_eq!(t.date(0), Date::new(2019, 4, 1));
        assert_eq!(t.date(30), Date::new(2019, 5, 1));
    }

    #[test]
    fn nameserver_ips_match_snapshot_glue() {
        let t = tiny_timeline(20);
        let day = 10;
        let zone = t.snapshot(day);
        for index in t.active_indices(day).into_iter().take(20) {
            for (host, ip) in t.nameserver_ips(index, day) {
                let glue = zone.get(&host, rootless_proto::rr::RType::A).expect("glue");
                assert!(glue.rdatas().contains(&RData::A(ip)), "{host} ip mismatch");
            }
        }
    }
}
