//! Synthetic root zone generation.
//!
//! The paper's experiments run against the real root zone file (1 532 TLDs,
//! ~22K records, ~14K RRsets, ~1.1 MB compressed in mid-2019). That file is
//! not redistributable inside this repository, so this module generates a
//! structurally faithful synthetic root zone (substitution documented in
//! DESIGN.md §2):
//!
//! * a deterministic TLD label pool ordered the way the namespace actually
//!   grew — legacy gTLDs, then country codes, then the post-2013 new-gTLD
//!   wave (including `xn--` IDN labels) — so a zone with more TLDs is a
//!   superset of one with fewer, which the history/churn models rely on;
//! * per-TLD delegation shape drawn from the label (not the build), so the
//!   same TLD has the same nameservers in every snapshot: either dedicated
//!   `X.nic.<tld>` hosts with in-bailiwick glue, or hosts shared with other
//!   TLDs from a pool of operators (the real zone's Afilias/Verisign/NeuStar
//!   pattern);
//! * A glue for every nameserver host, AAAA glue for most, and DS records
//!   for ~90% of TLDs (the real zone's DNSSEC adoption level).

use rootless_proto::name::Name;
use rootless_proto::rr::{Ds, RData, Record, Soa};
use rootless_util::rng::DetRng;

use crate::hints::RootHints;
use crate::zone::Zone;

/// Delegation (NS/glue) TTL in the root zone: two days (§2.1).
pub const DELEGATION_TTL: u32 = 172_800;
/// DS TTL in the root zone: one day.
pub const DS_TTL: u32 = 86_400;
/// Apex NS TTL: six days.
pub const APEX_NS_TTL: u32 = 518_400;
/// Negative-caching / SOA TTL: one day.
pub const SOA_TTL: u32 = 86_400;

/// Configuration for the synthetic root zone.
#[derive(Clone, Debug)]
pub struct RootZoneConfig {
    /// Number of delegated TLDs (mid-2019: 1 532).
    pub tld_count: usize,
    /// SOA serial, conventionally YYYYMMDDnn.
    pub serial: u32,
    /// Master seed. Zones with the same seed agree on every shared TLD.
    pub seed: u64,
    /// Fraction of TLDs carrying DS records (~0.9 in 2019).
    pub signed_fraction: f64,
    /// Fraction of nameserver hosts with AAAA glue.
    pub ipv6_glue_fraction: f64,
    /// Fraction of TLDs using dedicated `X.nic.<tld>` hosts (the rest share
    /// operator infrastructure).
    pub dedicated_host_fraction: f64,
    /// Number of shared operators in the pool.
    pub operator_count: usize,
}

impl Default for RootZoneConfig {
    fn default() -> Self {
        RootZoneConfig {
            tld_count: 1_532,
            serial: 2019040100,
            seed: 0x0DD5_EED0,
            signed_fraction: 0.90,
            ipv6_glue_fraction: 0.85,
            dedicated_host_fraction: 0.65,
            operator_count: 60,
        }
    }
}

impl RootZoneConfig {
    /// A small config for fast unit tests.
    pub fn small(tld_count: usize) -> Self {
        RootZoneConfig { tld_count, ..RootZoneConfig::default() }
    }
}

/// Legacy gTLDs present before the new-gTLD expansion.
const LEGACY_GTLDS: [&str; 22] = [
    "com", "net", "org", "edu", "gov", "mil", "int", "arpa", "info", "biz", "name", "pro", "aero",
    "coop", "museum", "jobs", "mobi", "travel", "cat", "tel", "asia", "post",
];

/// Deterministic pool of TLD labels, ordered by introduction era.
///
/// Index order is the *growth* order: `pool.label(i)` for `i < n` is
/// identical regardless of how many labels a caller eventually uses.
#[derive(Clone, Debug)]
pub struct TldPool {
    labels: Vec<String>,
}

impl TldPool {
    /// Builds a pool of at least `capacity` labels from `seed`.
    pub fn new(capacity: usize, seed: u64) -> Self {
        let mut labels: Vec<String> = Vec::with_capacity(capacity + 32);
        let mut seen = std::collections::HashSet::new();
        for l in LEGACY_GTLDS {
            labels.push(l.to_string());
            seen.insert(l.to_string());
        }
        // Country codes: a stable pseudo-random 250 of the 676 two-letter
        // codes (the real ccTLD count).
        let mut rng = DetRng::seed_from_u64(seed ^ 0xcc7d);
        let mut cc: Vec<String> = Vec::new();
        for a in b'a'..=b'z' {
            for b in b'a'..=b'z' {
                cc.push(format!("{}{}", a as char, b as char));
            }
        }
        rng.shuffle(&mut cc);
        for code in cc.into_iter().take(250) {
            if seen.insert(code.clone()) {
                labels.push(code);
            }
        }
        // New gTLDs: syllable words plus ~5% IDN (xn--) labels.
        let mut word_rng = DetRng::seed_from_u64(seed ^ 0x967d);
        while labels.len() < capacity {
            let label = if word_rng.chance(0.05) {
                idn_label(&mut word_rng)
            } else {
                syllable_word(&mut word_rng)
            };
            if seen.insert(label.clone()) {
                labels.push(label);
            }
        }
        TldPool { labels }
    }

    /// The `i`-th label in growth order.
    pub fn label(&self, i: usize) -> &str {
        &self.labels[i]
    }

    /// Number of labels available.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The first `n` labels.
    pub fn prefix(&self, n: usize) -> &[String] {
        &self.labels[..n]
    }
}

fn syllable_word(rng: &mut DetRng) -> String {
    const ONSETS: [&str; 16] = ["b", "c", "d", "f", "g", "h", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z"];
    const VOWELS: [&str; 5] = ["a", "e", "i", "o", "u"];
    const CODAS: [&str; 8] = ["", "", "n", "r", "s", "l", "x", "m"];
    let syllables = 2 + rng.below(2) as usize;
    let mut w = String::new();
    for _ in 0..syllables {
        w.push_str(ONSETS[rng.index(ONSETS.len())]);
        w.push_str(VOWELS[rng.index(VOWELS.len())]);
        w.push_str(CODAS[rng.index(CODAS.len())]);
    }
    w
}

fn idn_label(rng: &mut DetRng) -> String {
    let mut w = String::from("xn--");
    let len = 6 + rng.below(6) as usize;
    for _ in 0..len {
        let c = if rng.chance(0.2) {
            (b'0' + rng.below(10) as u8) as char
        } else {
            (b'a' + rng.below(26) as u8) as char
        };
        w.push(c);
    }
    w
}

// Cheap stable hash of a label for per-TLD derivation.
fn label_hash(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The shape of one TLD's delegation, derived deterministically from the
/// zone seed and the label alone.
#[derive(Clone, Debug)]
pub struct Delegation {
    /// The TLD name.
    pub name: Name,
    /// Nameserver host names.
    pub hosts: Vec<Name>,
    /// Whether the hosts are dedicated (in-bailiwick under the TLD).
    pub dedicated: bool,
    /// Number of DS records (0 = unsigned).
    pub ds_count: usize,
}

/// Derives the delegation shape for `label` under `cfg`.
pub fn delegation_for(label: &str, cfg: &RootZoneConfig) -> Delegation {
    let mut rng = DetRng::seed_from_u64(cfg.seed ^ label_hash(label));
    let name = Name::parse(label).expect("valid TLD label");
    let ns_count = 4 + rng.below(4) as usize; // 4..=7
    let dedicated = rng.chance(cfg.dedicated_host_fraction);
    let hosts = if dedicated {
        (0..ns_count)
            .map(|i| Name::parse(&format!("{}.nic.{label}", (b'a' + i as u8) as char)).unwrap())
            .collect()
    } else {
        let op = rng.below(cfg.operator_count as u64);
        // Pick ns_count distinct hosts from the operator's 8.
        let mut slots: Vec<usize> = (0..8).collect();
        rng.shuffle(&mut slots);
        slots
            .into_iter()
            .take(ns_count)
            .map(|s| operator_host(op, s))
            .collect()
    };
    let ds_count = if rng.chance(cfg.signed_fraction) { 1 + rng.below(2) as usize } else { 0 };
    Delegation { name, hosts, dedicated, ds_count }
}

/// Host `slot` of shared operator `op`.
pub fn operator_host(op: u64, slot: usize) -> Name {
    Name::parse(&format!("ns{slot}.dns-operator{op}.net")).unwrap()
}

/// Deterministic IPv4 address for a nameserver host name.
pub fn host_v4(host: &Name, seed: u64) -> std::net::Ipv4Addr {
    let mut rng = DetRng::seed_from_u64(seed ^ label_hash(&host.to_string()) ^ 0x4444);
    // Public-looking, avoids 0/255 endings.
    std::net::Ipv4Addr::new(
        (rng.below(190) + 5) as u8,
        rng.below(256) as u8,
        rng.below(256) as u8,
        (rng.below(253) + 1) as u8,
    )
}

/// Deterministic IPv6 address for a nameserver host name.
pub fn host_v6(host: &Name, seed: u64) -> std::net::Ipv6Addr {
    let mut rng = DetRng::seed_from_u64(seed ^ label_hash(&host.to_string()) ^ 0x6666);
    std::net::Ipv6Addr::new(
        0x2001,
        rng.below(0xffff) as u16,
        rng.below(0xffff) as u16,
        0,
        0,
        0,
        0,
        (rng.below(0xfffe) + 1) as u16,
    )
}

/// Whether a host gets AAAA glue.
fn has_v6(host: &Name, cfg: &RootZoneConfig) -> bool {
    let mut rng = DetRng::seed_from_u64(cfg.seed ^ label_hash(&host.to_string()) ^ 0xaaaa);
    rng.chance(cfg.ipv6_glue_fraction)
}

/// Builds the synthetic root zone.
pub fn build(cfg: &RootZoneConfig) -> Zone {
    let pool = TldPool::new(cfg.tld_count, cfg.seed);
    build_with_pool(cfg, &pool)
}

/// Builds the zone using a pre-built (possibly larger) label pool; used by
/// the churn/history models to evolve one pool across snapshots.
pub fn build_with_pool(cfg: &RootZoneConfig, pool: &TldPool) -> Zone {
    assert!(pool.len() >= cfg.tld_count, "pool smaller than tld_count");
    let mut zone = Zone::new(Name::root());

    // Apex: SOA + 13 root NS + their glue (the real file carries these).
    zone.insert(Record::new(
        Name::root(),
        SOA_TTL,
        RData::Soa(Soa {
            mname: Name::parse("a.root-servers.net").unwrap(),
            rname: Name::parse("nstld.verisign-grs.com").unwrap(),
            serial: cfg.serial,
            refresh: 1_800,
            retry: 900,
            expire: 604_800,
            minimum: 86_400,
        }),
    ))
    .unwrap();
    for (name, v4, v6) in RootHints::standard().servers {
        zone.insert(Record::new(Name::root(), APEX_NS_TTL, RData::Ns(name.clone()))).unwrap();
        zone.insert(Record::new(name.clone(), DELEGATION_TTL, RData::A(v4))).unwrap();
        zone.insert(Record::new(name, DELEGATION_TTL, RData::Aaaa(v6))).unwrap();
    }

    for label in pool.prefix(cfg.tld_count) {
        insert_delegation(&mut zone, label, cfg);
    }
    zone
}

/// Inserts one TLD's delegation (NS + glue + DS) into `zone`.
pub fn insert_delegation(zone: &mut Zone, label: &str, cfg: &RootZoneConfig) {
    let d = delegation_for(label, cfg);
    for host in &d.hosts {
        zone.insert(Record::new(d.name.clone(), DELEGATION_TTL, RData::Ns(host.clone()))).unwrap();
        // Glue: the real root zone carries an address for every NS host;
        // inserting is idempotent for shared hosts (RRsets dedupe).
        zone.insert(Record::new(host.clone(), DELEGATION_TTL, RData::A(host_v4(host, cfg.seed)))).unwrap();
        if has_v6(host, cfg) {
            zone.insert(Record::new(host.clone(), DELEGATION_TTL, RData::Aaaa(host_v6(host, cfg.seed)))).unwrap();
        }
    }
    for k in 0..d.ds_count {
        let mut rng = DetRng::seed_from_u64(cfg.seed ^ label_hash(label) ^ (0xd5 + k as u64));
        let digest: Vec<u8> = (0..32).map(|_| rng.next_u64() as u8).collect();
        zone.insert(Record::new(
            d.name.clone(),
            DS_TTL,
            RData::Ds(Ds {
                key_tag: rng.below(65_536) as u16,
                algorithm: 250,
                digest_type: 2,
                digest,
            }),
        ))
        .unwrap();
    }
}

/// Removes one TLD's delegation and any glue no longer referenced.
pub fn remove_delegation(zone: &mut Zone, label: &str, cfg: &RootZoneConfig) {
    let d = delegation_for(label, cfg);
    zone.remove_rrset(&d.name, rootless_proto::rr::RType::NS);
    zone.remove_rrset(&d.name, rootless_proto::rr::RType::DS);
    // Drop glue for hosts no other delegation references.
    let still_referenced: std::collections::HashSet<Name> = zone
        .rrsets()
        .filter(|s| s.rtype == rootless_proto::rr::RType::NS)
        .flat_map(|s| {
            s.rdatas().iter().filter_map(|rd| match rd {
                RData::Ns(h) => Some(h.clone()),
                _ => None,
            })
        })
        .collect();
    for host in &d.hosts {
        if !still_referenced.contains(host) {
            zone.remove_rrset(host, rootless_proto::rr::RType::A);
            zone.remove_rrset(host, rootless_proto::rr::RType::AAAA);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rootless_proto::rr::RType;

    #[test]
    fn pool_is_prefix_stable() {
        let a = TldPool::new(100, 7);
        let b = TldPool::new(500, 7);
        assert_eq!(a.prefix(100), b.prefix(100));
    }

    #[test]
    fn pool_labels_unique_and_valid() {
        let pool = TldPool::new(1_600, 42);
        let mut set = std::collections::HashSet::new();
        for i in 0..pool.len() {
            let label = pool.label(i);
            assert!(set.insert(label.to_string()), "duplicate label {label}");
            assert!(Name::parse(label).is_ok());
            assert!(!label.is_empty() && label.len() <= 63);
        }
    }

    #[test]
    fn pool_starts_with_legacy_gtlds() {
        let pool = TldPool::new(100, 1);
        assert_eq!(pool.label(0), "com");
        assert_eq!(pool.label(2), "org");
    }

    #[test]
    fn delegation_is_deterministic_per_label() {
        let cfg = RootZoneConfig::default();
        let a = delegation_for("com", &cfg);
        let b = delegation_for("com", &cfg);
        assert_eq!(a.hosts, b.hosts);
        assert_eq!(a.ds_count, b.ds_count);
    }

    #[test]
    fn small_zone_structure() {
        let cfg = RootZoneConfig::small(50);
        let zone = build(&cfg);
        assert_eq!(zone.tlds().len(), 50);
        assert_eq!(zone.serial(), cfg.serial);
        // Apex: 13 root NS.
        assert_eq!(zone.get(&Name::root(), RType::NS).unwrap().len(), 13);
        // Every NS host has A glue.
        for tld in zone.tlds() {
            let ns = zone.get(&tld, RType::NS).unwrap();
            assert!((4..=7).contains(&ns.len()), "{tld} has {} NS", ns.len());
            for rd in ns.rdatas() {
                if let RData::Ns(host) = rd {
                    assert!(zone.get(host, RType::A).is_some(), "no glue for {host}");
                }
            }
        }
    }

    #[test]
    fn full_zone_matches_paper_scale() {
        // §5.1: 1 532 TLDs, ~22K records, ~14K RRsets in April 2019.
        let cfg = RootZoneConfig::default();
        let zone = build(&cfg);
        assert_eq!(zone.tlds().len(), 1_532);
        let records = zone.record_count();
        let rrsets = zone.rrset_count();
        assert!(
            (17_000..27_000).contains(&records),
            "record count {records} outside the paper's ~22K band"
        );
        assert!(
            (10_000..18_000).contains(&rrsets),
            "rrset count {rrsets} outside the paper's ~14K band"
        );
    }

    #[test]
    fn builds_are_reproducible() {
        let cfg = RootZoneConfig::small(100);
        assert_eq!(build(&cfg), build(&cfg));
    }

    #[test]
    fn different_seed_changes_content() {
        let a = build(&RootZoneConfig::small(100));
        let b = build(&RootZoneConfig { seed: 99, ..RootZoneConfig::small(100) });
        assert_ne!(a, b);
    }

    #[test]
    fn growing_zone_is_superset() {
        let cfg_small = RootZoneConfig::small(80);
        let cfg_big = RootZoneConfig::small(120);
        let small = build(&cfg_small);
        let big = build(&cfg_big);
        for tld in small.tlds() {
            assert_eq!(
                small.get(&tld, RType::NS),
                big.get(&tld, RType::NS),
                "delegation for {tld} changed when the zone grew"
            );
        }
    }

    #[test]
    fn remove_delegation_cleans_glue() {
        let cfg = RootZoneConfig::small(30);
        let mut zone = build(&cfg);
        let victim = zone.tlds()[5].clone();
        let label = victim.to_string().trim_end_matches('.').to_string();
        let d = delegation_for(&label, &cfg);
        remove_delegation(&mut zone, &label, &cfg);
        assert!(zone.get(&victim, RType::NS).is_none());
        if d.dedicated {
            for host in &d.hosts {
                assert!(zone.get(host, RType::A).is_none(), "stale glue for {host}");
            }
        }
        assert_eq!(zone.tlds().len(), 29);
    }

    #[test]
    fn shared_operator_glue_survives_single_removal() {
        let cfg = RootZoneConfig { dedicated_host_fraction: 0.0, ..RootZoneConfig::small(40) };
        let mut zone = build(&cfg);
        // Find two TLDs sharing at least one host.
        let tlds = zone.tlds();
        let mut shared_pair = None;
        'outer: for i in 0..tlds.len() {
            for j in (i + 1)..tlds.len() {
                let hi = zone.delegation_records(&tlds[i]);
                let hj = zone.delegation_records(&tlds[j]);
                let hosts_i: std::collections::HashSet<_> = hi
                    .iter()
                    .filter_map(|r| match &r.rdata {
                        RData::Ns(h) => Some(h.clone()),
                        _ => None,
                    })
                    .collect();
                for r in &hj {
                    if let RData::Ns(h) = &r.rdata {
                        if hosts_i.contains(h) {
                            shared_pair = Some((tlds[i].clone(), h.clone()));
                            break 'outer;
                        }
                    }
                }
            }
        }
        let (tld, host) = shared_pair.expect("operator pool should force sharing");
        let label = tld.to_string().trim_end_matches('.').to_string();
        remove_delegation(&mut zone, &label, &cfg);
        assert!(zone.get(&host, RType::A).is_some(), "shared glue must survive");
    }

    #[test]
    fn host_addressing_is_stable() {
        let h = Name::parse("a.nic.shop").unwrap();
        assert_eq!(host_v4(&h, 7), host_v4(&h, 7));
        assert_ne!(host_v4(&h, 7), host_v4(&h, 8));
    }
}
