//! Zone diffs: the "recent additions / diffs" feed sketched in §5.3 and the
//! payload an IXFR-style incremental transfer carries.
//!
//! A [`ZoneDiff`] is computed between two zone versions at RRset granularity
//! and can be (a) applied to a zone to advance it, and (b) serialized to a
//! compact binary form for distribution (used by `rootless-delta` when
//! comparing distribution mechanisms).

use rootless_proto::name::Name;
use rootless_proto::rr::{RType, Record};
use rootless_proto::wire::{Decoder, Encoder};
use rootless_proto::ProtoError;

use crate::rrset::{RrKey, RrSet};
use crate::zone::Zone;

/// An RRset-granularity difference between two zone versions.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ZoneDiff {
    /// Serial of the zone this diff applies to.
    pub serial_from: u32,
    /// Serial after application.
    pub serial_to: u32,
    /// RRsets present only in the new zone.
    pub added: Vec<RrSet>,
    /// Keys of RRsets present only in the old zone.
    pub removed: Vec<(Name, RType)>,
    /// RRsets present in both but with different content (new version).
    pub changed: Vec<RrSet>,
}

impl ZoneDiff {
    /// Computes the diff from `old` to `new`.
    pub fn compute(old: &Zone, new: &Zone) -> ZoneDiff {
        use std::collections::BTreeMap;
        let old_sets: BTreeMap<RrKey, &RrSet> = old.rrsets().map(|s| (s.key(), s)).collect();
        let new_sets: BTreeMap<RrKey, &RrSet> = new.rrsets().map(|s| (s.key(), s)).collect();

        let mut diff = ZoneDiff {
            serial_from: old.serial(),
            serial_to: new.serial(),
            ..ZoneDiff::default()
        };
        for (key, set) in &new_sets {
            match old_sets.get(key) {
                None => diff.added.push((*set).canonicalized()),
                Some(old_set) => {
                    if old_set.canonicalized() != (*set).canonicalized() {
                        diff.changed.push((*set).canonicalized());
                    }
                }
            }
        }
        for key in old_sets.keys() {
            if !new_sets.contains_key(key) {
                diff.removed.push((key.name.clone(), key.rtype()));
            }
        }
        diff
    }

    /// True if the two versions were identical (serials aside).
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed.is_empty()
    }

    /// Total RRsets touched.
    pub fn touched(&self) -> usize {
        self.added.len() + self.removed.len() + self.changed.len()
    }

    /// Applies the diff to `zone`. Fails if the zone's serial does not match
    /// `serial_from` (the caller must fetch a full copy instead).
    pub fn apply(&self, zone: &mut Zone) -> Result<(), DiffError> {
        if zone.serial() != self.serial_from {
            return Err(DiffError::SerialMismatch { expected: self.serial_from, found: zone.serial() });
        }
        for (name, rtype) in &self.removed {
            zone.remove_rrset(name, *rtype);
        }
        for set in self.added.iter().chain(&self.changed) {
            zone.insert_rrset(set.clone()).map_err(|e| DiffError::Apply {
                owner: set.name.clone(),
                reason: e.to_string(),
            })?;
        }
        Ok(())
    }

    /// Binary encoding for distribution. Counts are u32: a root-history diff
    /// after a long gap (or a whole-delegation bulk change) can exceed the
    /// 65 535 RRsets a u16 silently truncates at.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.u32(self.serial_from);
        enc.u32(self.serial_to);
        enc.u32(self.removed.len() as u32);
        enc.u32(self.added.len() as u32);
        enc.u32(self.changed.len() as u32);
        for (name, rtype) in &self.removed {
            enc.name_uncompressed(name);
            enc.u16(rtype.to_u16());
        }
        for set in self.added.iter().chain(&self.changed) {
            let records = set.records();
            enc.u32(records.len() as u32);
            for r in records {
                r.encode(&mut enc);
            }
        }
        enc.finish()
    }

    /// Decodes a binary diff.
    pub fn decode(buf: &[u8]) -> Result<ZoneDiff, ProtoError> {
        let mut dec = Decoder::new(buf);
        let serial_from = dec.u32()?;
        let serial_to = dec.u32()?;
        let removed_n = dec.u32()? as usize;
        let added_n = dec.u32()? as usize;
        let changed_n = dec.u32()? as usize;
        let mut removed = Vec::with_capacity(removed_n);
        for _ in 0..removed_n {
            let name = dec.name()?;
            let rtype = RType::from_u16(dec.u16()?);
            removed.push((name, rtype));
        }
        let read_sets = |dec: &mut Decoder<'_>, n: usize| -> Result<Vec<RrSet>, ProtoError> {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                let count = dec.u32()? as usize;
                if count == 0 {
                    return Err(ProtoError::BadMessage("empty RRset in diff"));
                }
                let mut records: Vec<Record> = Vec::with_capacity(count);
                for _ in 0..count {
                    records.push(Record::decode(dec)?);
                }
                let mut set = RrSet::from_record(records[0].clone());
                for r in &records[1..] {
                    set.push(r.ttl, r.rdata.clone());
                }
                out.push(set);
            }
            Ok(out)
        };
        let added = read_sets(&mut dec, added_n)?;
        let changed = read_sets(&mut dec, changed_n)?;
        if !dec.is_exhausted() {
            return Err(ProtoError::BadMessage("trailing bytes in diff"));
        }
        Ok(ZoneDiff { serial_from, serial_to, added, removed, changed })
    }

    /// The newly-delegated TLD names in this diff — the §5.3 "recent
    /// additions" feed content.
    pub fn new_tlds(&self) -> Vec<Name> {
        self.added
            .iter()
            .filter(|s| s.rtype == RType::NS && !s.name.is_root() && s.name.label_count() == 1)
            .map(|s| s.name.clone())
            .collect()
    }
}

/// Errors applying a diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffError {
    /// The target zone is not at the version the diff starts from.
    SerialMismatch {
        /// Serial the diff applies to.
        expected: u32,
        /// Serial the zone actually has.
        found: u32,
    },
    /// An RRset failed to insert, naming the owner so incremental-verify
    /// consumers can report *which* delegation a bad diff touched.
    Apply {
        /// Owner name of the RRset that failed to insert.
        owner: Name,
        /// The underlying zone error.
        reason: String,
    },
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::SerialMismatch { expected, found } => {
                write!(f, "diff applies to serial {expected} but zone is at {found}")
            }
            DiffError::Apply { owner, reason } => {
                write!(f, "diff apply failed at {owner}: {reason}")
            }
        }
    }
}

impl std::error::Error for DiffError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rootzone::{self, RootZoneConfig};
    use rootless_proto::rr::{RData, Soa};

    fn zone_with_serial(tlds: usize, serial: u32) -> Zone {
        let cfg = RootZoneConfig { serial, ..RootZoneConfig::small(tlds) };
        rootzone::build(&cfg)
    }

    /// Every diff the suite produces must survive the wire: the encode/apply
    /// paths would otherwise be free to drift apart (`decode(encode(d)) == d`).
    fn assert_roundtrip(diff: &ZoneDiff) {
        assert_eq!(&ZoneDiff::decode(&diff.encode()).unwrap(), diff);
    }

    #[test]
    fn identical_zones_produce_empty_diff() {
        let z = zone_with_serial(30, 1);
        let diff = ZoneDiff::compute(&z, &z);
        assert!(diff.is_empty());
        assert_eq!(diff.touched(), 0);
        assert_roundtrip(&diff);
        // The empty diff applies as a no-op.
        let mut copy = z.clone();
        diff.apply(&mut copy).unwrap();
        assert_eq!(copy, z);
    }

    #[test]
    fn added_tld_appears_in_diff_and_new_tlds() {
        let old = zone_with_serial(30, 1);
        let new = zone_with_serial(31, 2);
        let diff = ZoneDiff::compute(&old, &new);
        assert!(!diff.is_empty());
        let new_tlds = diff.new_tlds();
        assert_eq!(new_tlds.len(), 1);
        // SOA changed (serial bump).
        assert!(diff.changed.iter().any(|s| s.rtype == RType::SOA));
    }

    #[test]
    fn apply_advances_zone() {
        let old = zone_with_serial(30, 1);
        let new = zone_with_serial(35, 2);
        let diff = ZoneDiff::compute(&old, &new);
        assert_roundtrip(&diff);
        let mut z = old.clone();
        diff.apply(&mut z).unwrap();
        assert_eq!(z, new);
    }

    #[test]
    fn apply_handles_removals() {
        let old = zone_with_serial(35, 1);
        let new = zone_with_serial(30, 2);
        let diff = ZoneDiff::compute(&old, &new);
        assert!(!diff.removed.is_empty());
        assert_roundtrip(&diff);
        let mut z = old.clone();
        diff.apply(&mut z).unwrap();
        assert_eq!(z, new);
    }

    #[test]
    fn apply_rejects_wrong_serial() {
        let a = zone_with_serial(30, 1);
        let b = zone_with_serial(31, 2);
        let c = zone_with_serial(32, 3);
        let diff = ZoneDiff::compute(&b, &c);
        let mut z = a.clone();
        assert_eq!(
            diff.apply(&mut z),
            Err(DiffError::SerialMismatch { expected: 2, found: 1 })
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let old = zone_with_serial(30, 1);
        let new = zone_with_serial(34, 2);
        let diff = ZoneDiff::compute(&old, &new);
        let buf = diff.encode();
        let back = ZoneDiff::decode(&buf).unwrap();
        assert_eq!(back, diff);
        // And the decoded diff still applies correctly.
        let mut z = old.clone();
        back.apply(&mut z).unwrap();
        assert_eq!(z, new);
    }

    #[test]
    fn diff_much_smaller_than_zone_for_small_change() {
        let old = zone_with_serial(500, 1);
        let new = zone_with_serial(502, 2);
        let diff = ZoneDiff::compute(&old, &new);
        let diff_size = diff.encode().len();
        let zone_size = crate::master::serialize(&new).len();
        assert!(
            diff_size * 10 < zone_size,
            "diff {diff_size} should be far smaller than zone {zone_size}"
        );
    }

    #[test]
    fn changed_rrset_content_detected() {
        let mut old = Zone::new(Name::root());
        let mut new = Zone::new(Name::root());
        let soa = |serial| {
            RData::Soa(Soa {
                mname: Name::parse("m").unwrap(),
                rname: Name::parse("r").unwrap(),
                serial,
                refresh: 1,
                retry: 1,
                expire: 1,
                minimum: 1,
            })
        };
        old.insert(Record::new(Name::root(), 60, soa(1))).unwrap();
        new.insert(Record::new(Name::root(), 60, soa(2))).unwrap();
        old.insert(Record::new(Name::parse("com").unwrap(), 60, RData::Ns(Name::parse("a.x").unwrap()))).unwrap();
        new.insert(Record::new(Name::parse("com").unwrap(), 60, RData::Ns(Name::parse("b.x").unwrap()))).unwrap();
        let diff = ZoneDiff::compute(&old, &new);
        assert_eq!(diff.changed.len(), 2); // SOA + com NS
        assert!(diff.added.is_empty());
        assert!(diff.removed.is_empty());
        assert_roundtrip(&diff);
        let mut z = old.clone();
        diff.apply(&mut z).unwrap();
        assert_eq!(z, new);
    }

    #[test]
    fn decode_rejects_truncation() {
        let old = zone_with_serial(20, 1);
        let new = zone_with_serial(22, 2);
        let buf = ZoneDiff::compute(&old, &new).encode();
        assert!(ZoneDiff::decode(&buf[..buf.len() - 3]).is_err());
    }

    #[test]
    fn whole_delegation_removal_roundtrips_and_applies() {
        // Delete one TLD's entire delegation — NS, any DS, and its in-zone
        // glue hosts — the shape the incremental verifier's adjacent-span
        // invalidation leans on.
        let old = zone_with_serial(30, 1);
        let victim = old.tlds()[7].clone();
        let mut new = old.clone();
        let keys: Vec<(Name, RType)> = new
            .rrsets()
            .filter(|s| s.name.is_within(&victim))
            .map(|s| (s.name.clone(), s.rtype))
            .collect();
        assert!(keys.len() >= 2, "delegation should span NS + glue");
        for (name, rtype) in &keys {
            new.remove_rrset(name, *rtype);
        }
        let mut soa = new.soa().unwrap().clone();
        soa.serial = 2;
        let mut set = RrSet::new(Name::root(), RType::SOA, 86_400);
        set.push(86_400, RData::Soa(soa));
        new.insert_rrset(set).unwrap();

        let diff = ZoneDiff::compute(&old, &new);
        assert_eq!(diff.removed.len(), keys.len());
        assert!(diff.added.is_empty());
        assert_roundtrip(&diff);
        let mut z = old.clone();
        diff.apply(&mut z).unwrap();
        assert_eq!(z, new);
        assert!(!z.name_exists(&victim));
    }

    #[test]
    fn apex_touching_diff_roundtrips_and_applies() {
        // A diff that rewrites apex sets (SOA serial + root NS set), not just
        // delegations.
        let old = zone_with_serial(10, 1);
        let mut new = old.clone();
        let mut soa = new.soa().unwrap().clone();
        soa.serial = 2;
        let mut soa_set = RrSet::new(Name::root(), RType::SOA, 86_400);
        soa_set.push(86_400, RData::Soa(soa));
        new.insert_rrset(soa_set).unwrap();
        let mut ns = new.get(&Name::root(), RType::NS).unwrap().clone();
        ns.push(518_400, RData::Ns(Name::parse("new.root-servers.net").unwrap()));
        new.insert_rrset(ns).unwrap();

        let diff = ZoneDiff::compute(&old, &new);
        assert!(diff.changed.iter().any(|s| s.name.is_root() && s.rtype == RType::SOA));
        assert!(diff.changed.iter().any(|s| s.name.is_root() && s.rtype == RType::NS));
        assert_roundtrip(&diff);
        let mut z = old.clone();
        diff.apply(&mut z).unwrap();
        assert_eq!(z, new);
    }

    #[test]
    fn decode_rejects_empty_rrset() {
        // Hand-craft a diff claiming one added RRset with zero records.
        let mut enc = Encoder::new();
        enc.u32(1); // serial_from
        enc.u32(2); // serial_to
        enc.u32(0); // removed
        enc.u32(1); // added
        enc.u32(0); // changed
        enc.u32(0); // record count of the single added set
        assert_eq!(
            ZoneDiff::decode(&enc.finish()),
            Err(ProtoError::BadMessage("empty RRset in diff"))
        );
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let old = zone_with_serial(10, 1);
        let new = zone_with_serial(11, 2);
        let mut buf = ZoneDiff::compute(&old, &new).encode();
        buf.push(0);
        assert_eq!(
            ZoneDiff::decode(&buf),
            Err(ProtoError::BadMessage("trailing bytes in diff"))
        );
    }

    #[test]
    fn apply_reports_failing_owner() {
        // An added set outside the target zone's origin must fail, naming the
        // offending owner.
        let origin = Name::parse("example").unwrap();
        let mut zone = Zone::new(origin.clone());
        let mut soa_set = RrSet::new(origin, RType::SOA, 60);
        soa_set.push(
            60,
            RData::Soa(Soa {
                mname: Name::parse("m").unwrap(),
                rname: Name::parse("r").unwrap(),
                serial: 1,
                refresh: 1,
                retry: 1,
                expire: 1,
                minimum: 1,
            }),
        );
        zone.insert_rrset(soa_set).unwrap();
        let outside = Name::parse("elsewhere").unwrap();
        let mut evil = RrSet::new(outside.clone(), RType::NS, 60);
        evil.push(60, RData::Ns(Name::parse("ns.elsewhere").unwrap()));
        let diff = ZoneDiff { serial_from: 1, serial_to: 2, added: vec![evil], ..ZoneDiff::default() };
        match diff.apply(&mut zone) {
            Err(DiffError::Apply { owner, .. }) => assert_eq!(owner, outside),
            other => panic!("expected Apply error naming the owner, got {other:?}"),
        }
    }
}
