//! Extraction of one TLD's records from a compressed root zone file.
//!
//! §5.1 of the paper: *"as a simple test [we] wrote a Python script to
//! extract all records related to a given TLD from the standard compressed
//! root zone file. Over 1,000 trials the script takes an average of 37 msec
//! ... similar to network round-trip times."* This is the paper's evidence
//! that the on-demand incorporation strategy (consult the zone file instead
//! of the cache) is fast enough.
//!
//! [`extract_tld_text`] mirrors that script exactly: decompress the whole
//! file, scan the master-file text, return the lines for the TLD's own
//! RRsets plus glue for its nameserver hosts. [`TldIndex`] is the "clearly
//! additional steps that would make the process faster" option the paper
//! mentions (a pre-built per-TLD index over the uncompressed file).

use std::collections::HashMap;

use rootless_proto::name::Name;
use rootless_util::lzss;

/// Extracts all master-file lines related to `tld` from an LZSS-compressed
/// root zone file: records owned by the TLD itself and A/AAAA glue for the
/// nameserver hosts its NS lines reference.
///
/// Decompresses on every call, like the paper's script re-reading the gzip
/// file per trial.
pub fn extract_tld_text(compressed: &[u8], tld: &str) -> Result<Vec<String>, lzss::LzssError> {
    let raw = lzss::decompress(compressed)?;
    let text = String::from_utf8_lossy(&raw);
    Ok(scan_for_tld(&text, tld))
}

/// The scan phase alone, on already-decompressed text.
pub fn scan_for_tld(text: &str, tld: &str) -> Vec<String> {
    let owner = format!("{}.", tld.trim_end_matches('.'));
    let mut out = Vec::new();
    let mut hosts: Vec<String> = Vec::new();
    // Pass 1: lines owned by the TLD; remember NS targets.
    for line in text.lines() {
        let mut fields = line.split_whitespace();
        let Some(first) = fields.next() else { continue };
        if !first.eq_ignore_ascii_case(&owner) {
            continue;
        }
        out.push(line.to_string());
        let rest: Vec<&str> = fields.collect();
        if let Some(pos) = rest.iter().position(|t| t.eq_ignore_ascii_case("NS")) {
            if let Some(target) = rest.get(pos + 1) {
                hosts.push(target.to_ascii_lowercase());
            }
        }
    }
    if hosts.is_empty() {
        return out;
    }
    // Pass 2: glue lines for the NS hosts.
    for line in text.lines() {
        let mut fields = line.split_whitespace();
        let Some(first) = fields.next() else { continue };
        let owner_lc = first.to_ascii_lowercase();
        if hosts.iter().any(|h| h == &owner_lc) {
            let rest: Vec<&str> = fields.collect();
            if rest.iter().any(|t| t.eq_ignore_ascii_case("A") || t.eq_ignore_ascii_case("AAAA")) {
                out.push(line.to_string());
            }
        }
    }
    out
}

/// A per-TLD line index over the uncompressed zone text — the paper's
/// suggested speedup ("loading the root zone into a database or creating a
/// single file for each TLD").
pub struct TldIndex {
    text: String,
    /// TLD label (lowercase, no trailing dot) → byte ranges of its lines.
    ranges: HashMap<String, Vec<(usize, usize)>>,
}

impl TldIndex {
    /// Builds the index by one pass over the zone text, attributing each line
    /// to the TLD of its owner name (glue hosts attribute to their TLD's
    /// delegation via the NS targets seen first).
    pub fn build(text: String) -> TldIndex {
        let mut ranges: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
        // host name (lowercase) -> every tld label referencing it (shared
        // operator hosts serve many TLDs)
        let mut host_owner: HashMap<String, Vec<String>> = HashMap::new();

        // Pass 1: direct owner attribution + NS target discovery.
        let mut offset = 0;
        for line in text.lines() {
            let end = offset + line.len();
            let mut fields = line.split_whitespace();
            if let Some(first) = fields.next() {
                if let Ok(name) = Name::parse(first) {
                    if name.label_count() == 1 {
                        let label = name.to_string().trim_end_matches('.').to_ascii_lowercase();
                        ranges.entry(label.clone()).or_default().push((offset, end));
                        let rest: Vec<&str> = fields.collect();
                        if let Some(pos) = rest.iter().position(|t| t.eq_ignore_ascii_case("NS")) {
                            if let Some(target) = rest.get(pos + 1) {
                                host_owner.entry(target.to_ascii_lowercase()).or_default().push(label);
                            }
                        }
                    }
                }
            }
            offset = end + 1; // '\n'
        }
        // Pass 2: glue attribution.
        let mut offset = 0;
        for line in text.lines() {
            let end = offset + line.len();
            let mut fields = line.split_whitespace();
            if let Some(first) = fields.next() {
                if let Some(tlds) = host_owner.get(&first.to_ascii_lowercase()) {
                    let rest: Vec<&str> = fields.collect();
                    if rest.iter().any(|t| t.eq_ignore_ascii_case("A") || t.eq_ignore_ascii_case("AAAA")) {
                        for tld in tlds {
                            ranges.get_mut(tld).expect("tld present").push((offset, end));
                        }
                    }
                }
            }
            offset = end + 1;
        }
        TldIndex { text, ranges }
    }

    /// Number of indexed TLDs.
    pub fn tld_count(&self) -> usize {
        self.ranges.len()
    }

    /// Lines for one TLD (owner records first, then glue).
    pub fn lookup(&self, tld: &str) -> Vec<&str> {
        let label = tld.trim_end_matches('.').to_ascii_lowercase();
        self.ranges
            .get(&label)
            .map(|rs| rs.iter().map(|&(a, b)| &self.text[a..b]).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master;
    use crate::rootzone::{self, RootZoneConfig};

    fn small_zone_text() -> String {
        master::serialize(&rootzone::build(&RootZoneConfig::small(60)))
    }

    #[test]
    fn extract_finds_ns_and_glue() {
        let text = small_zone_text();
        let compressed = rootless_util::lzss::compress(text.as_bytes());
        let zone = rootzone::build(&RootZoneConfig::small(60));
        let tld = zone.tlds()[10].to_string();
        let label = tld.trim_end_matches('.');
        let lines = extract_tld_text(&compressed, label).unwrap();
        let expected = zone.delegation_records(&rootless_proto::name::Name::parse(label).unwrap());
        assert_eq!(lines.len(), expected.len(), "lines: {lines:#?}");
        assert!(lines.iter().any(|l| l.contains("NS")));
        assert!(lines.iter().any(|l| l.split_whitespace().any(|t| t == "A")));
    }

    #[test]
    fn extract_unknown_tld_is_empty() {
        let text = small_zone_text();
        let compressed = rootless_util::lzss::compress(text.as_bytes());
        assert!(extract_tld_text(&compressed, "zz-nonexistent").unwrap().is_empty());
    }

    #[test]
    fn extract_is_case_insensitive() {
        let text = small_zone_text();
        let compressed = rootless_util::lzss::compress(text.as_bytes());
        let zone = rootzone::build(&RootZoneConfig::small(60));
        let label = zone.tlds()[3].to_string().trim_end_matches('.').to_uppercase();
        assert!(!extract_tld_text(&compressed, &label).unwrap().is_empty());
    }

    #[test]
    fn extract_rejects_corrupt_file() {
        assert!(extract_tld_text(b"not compressed", "com").is_err());
    }

    #[test]
    fn index_matches_scan() {
        let text = small_zone_text();
        let zone = rootzone::build(&RootZoneConfig::small(60));
        let index = TldIndex::build(text.clone());
        for tld in zone.tlds().iter().take(15) {
            let label = tld.to_string().trim_end_matches('.').to_string();
            let scanned = scan_for_tld(&text, &label);
            let mut indexed: Vec<String> = index.lookup(&label).iter().map(|s| s.to_string()).collect();
            let mut scanned_sorted = scanned.clone();
            scanned_sorted.sort();
            indexed.sort();
            indexed.dedup();
            scanned_sorted.dedup();
            assert_eq!(indexed, scanned_sorted, "mismatch for {label}");
        }
    }

    #[test]
    fn index_covers_all_tlds() {
        let text = small_zone_text();
        let index = TldIndex::build(text);
        // 60 TLDs; root-servers.net glue lines attribute to "net" only if
        // present — the index counts owner TLDs seen.
        assert!(index.tld_count() >= 60, "indexed {}", index.tld_count());
    }
}
