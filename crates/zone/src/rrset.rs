//! RRsets: all records sharing an owner name and type (RFC 2181 §5).

use rootless_proto::name::Name;
use rootless_proto::rr::{RData, RType, Record};

/// Key identifying an RRset within a zone: owner name + type.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RrKey {
    /// Owner name.
    pub name: Name,
    /// Record type (as its wire value so the key is `Ord`).
    rtype: u16,
}

impl RrKey {
    /// Builds a key.
    pub fn new(name: Name, rtype: RType) -> Self {
        RrKey { name, rtype: rtype.to_u16() }
    }

    /// The record type.
    pub fn rtype(&self) -> RType {
        RType::from_u16(self.rtype)
    }
}

/// A set of records sharing owner name, class and type. All members share a
/// TTL (RFC 2181 §5.2: differing TTLs in an RRset are deprecated; this
/// implementation normalizes to the minimum on insert).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RrSet {
    /// Owner name.
    pub name: Name,
    /// Record type of every member.
    pub rtype: RType,
    /// Shared TTL.
    pub ttl: u32,
    rdatas: Vec<RData>,
}

impl RrSet {
    /// Creates an empty RRset.
    pub fn new(name: Name, rtype: RType, ttl: u32) -> Self {
        RrSet { name, rtype, ttl, rdatas: Vec::new() }
    }

    /// Creates an RRset from one record.
    pub fn from_record(record: Record) -> Self {
        RrSet {
            name: record.name,
            rtype: record.rdata.rtype(),
            ttl: record.ttl,
            rdatas: vec![record.rdata],
        }
    }

    /// Adds an RDATA; duplicate RDATAs are ignored (RRsets are sets). A lower
    /// TTL lowers the shared TTL. Members are kept in canonical RDATA order
    /// (RFC 4034 §6.3) as an invariant, so two RRsets with the same content
    /// always compare equal regardless of insertion order.
    pub fn push(&mut self, ttl: u32, rdata: RData) {
        debug_assert_eq!(rdata.rtype(), self.rtype, "mixed types in RRset");
        if self.rdatas.is_empty() {
            self.ttl = ttl;
        } else {
            self.ttl = self.ttl.min(ttl);
        }
        let canon = rdata.canonical_bytes();
        match self
            .rdatas
            .binary_search_by(|probe| probe.canonical_bytes().cmp(&canon))
        {
            Ok(_) => {} // duplicate
            Err(pos) => self.rdatas.insert(pos, rdata),
        }
    }

    /// Removes an RDATA; returns whether it was present.
    pub fn remove(&mut self, rdata: &RData) -> bool {
        let before = self.rdatas.len();
        self.rdatas.retain(|r| r != rdata);
        before != self.rdatas.len()
    }

    /// Member RDATAs.
    pub fn rdatas(&self) -> &[RData] {
        &self.rdatas
    }

    /// Number of records in the set.
    pub fn len(&self) -> usize {
        self.rdatas.len()
    }

    /// True if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.rdatas.is_empty()
    }

    /// Expands to owned [`Record`] values.
    pub fn records(&self) -> Vec<Record> {
        self.rdatas
            .iter()
            .map(|rd| Record::new(self.name.clone(), self.ttl, rd.clone()))
            .collect()
    }

    /// Appends this set's records to an existing vector — the serving hot
    /// path's variant of [`RrSet::records`]: no intermediate `Vec`, so once
    /// `out` has reached steady-state capacity the append is
    /// allocation-free for the referral record types (NS/A/AAAA/SOA clone
    /// by refcount bump or by value).
    pub fn push_records_into(&self, out: &mut Vec<Record>) {
        out.reserve(self.rdatas.len());
        for rd in &self.rdatas {
            out.push(Record::new(self.name.clone(), self.ttl, rd.clone()));
        }
    }

    /// Key for this RRset.
    pub fn key(&self) -> RrKey {
        RrKey::new(self.name.clone(), self.rtype)
    }

    /// Canonical form with RDATAs sorted by their canonical bytes — the
    /// representation DNSSEC signs and diffs compare.
    pub fn canonicalized(&self) -> RrSet {
        let mut rdatas = self.rdatas.clone();
        rdatas.sort_by_key(|a| a.canonical_bytes());
        RrSet { name: self.name.clone(), rtype: self.rtype, ttl: self.ttl, rdatas }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn push_dedupes() {
        let mut set = RrSet::new(n("com"), RType::NS, 172_800);
        set.push(172_800, RData::Ns(n("a.gtld-servers.net")));
        set.push(172_800, RData::Ns(n("a.gtld-servers.net")));
        set.push(172_800, RData::Ns(n("b.gtld-servers.net")));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn ttl_normalizes_to_minimum() {
        let mut set = RrSet::new(n("com"), RType::NS, 0);
        set.push(172_800, RData::Ns(n("a.gtld-servers.net")));
        assert_eq!(set.ttl, 172_800);
        set.push(86_400, RData::Ns(n("b.gtld-servers.net")));
        assert_eq!(set.ttl, 86_400);
        set.push(900_000, RData::Ns(n("c.gtld-servers.net")));
        assert_eq!(set.ttl, 86_400);
    }

    #[test]
    fn remove_works() {
        let mut set = RrSet::new(n("com"), RType::NS, 60);
        let a = RData::Ns(n("a.gtld-servers.net"));
        set.push(60, a.clone());
        assert!(set.remove(&a));
        assert!(!set.remove(&a));
        assert!(set.is_empty());
    }

    #[test]
    fn records_expand_with_shared_ttl() {
        let mut set = RrSet::new(n("com"), RType::NS, 60);
        set.push(60, RData::Ns(n("a.gtld-servers.net")));
        set.push(30, RData::Ns(n("b.gtld-servers.net")));
        let records = set.records();
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| r.ttl == 30));
    }

    #[test]
    fn canonicalized_sorts_rdatas() {
        let mut set = RrSet::new(n("x"), RType::A, 60);
        set.push(60, RData::A("10.0.0.2".parse().unwrap()));
        set.push(60, RData::A("10.0.0.1".parse().unwrap()));
        let canon = set.canonicalized();
        assert_eq!(canon.rdatas()[0], RData::A("10.0.0.1".parse().unwrap()));
        // Canonicalization is idempotent.
        assert_eq!(canon.canonicalized(), canon);
    }

    #[test]
    fn key_ordering_follows_canonical_name_order() {
        let a = RrKey::new(n("a.example"), RType::NS);
        let b = RrKey::new(n("z.example"), RType::A);
        let c = RrKey::new(n("example"), RType::NS);
        assert!(c < a, "parent sorts before child");
        assert!(a < b);
    }

    #[test]
    fn key_orders_types_within_name() {
        let ns = RrKey::new(n("example"), RType::NS);
        let a = RrKey::new(n("example"), RType::A);
        assert!(a < ns, "A (1) sorts before NS (2)");
    }
}
