//! RFC 1035 master-file (presentation format) parsing and serialization.
//!
//! The root zone file is distributed as master-file text; the paper's size
//! and extraction experiments (§5.1, §5.2) operate on that text form. This
//! parser supports the subset the root zone uses plus the conveniences test
//! fixtures want:
//!
//! * `$ORIGIN` and `$TTL` directives,
//! * `@` for the origin, relative and absolute names,
//! * omitted owner (repeats the previous owner), omitted TTL/class,
//! * `;` comments and parenthesized multi-line records (SOA style),
//! * quoted character strings for TXT.

use rootless_proto::name::Name;
use rootless_proto::rr::{Caa, Dnskey, Ds, RClass, RData, RType, Record, Rrsig, Soa, Srv, Zonemd};

use crate::zone::{Zone, ZoneError};

/// Parses master-file text into a [`Zone`] rooted at `default_origin`
/// (overridable by `$ORIGIN`).
pub fn parse(text: &str, default_origin: Name) -> Result<Zone, ZoneError> {
    let mut origin = default_origin.clone();
    let mut default_ttl: Option<u32> = None;
    let mut last_owner: Option<Name> = None;
    let mut zone = Zone::new(default_origin);

    for (line_no, logical) in logical_lines(text) {
        let err = |message: String| ZoneError::Parse { line: line_no, message };
        let tokens = tokenize(&logical).map_err(&err)?;
        if tokens.is_empty() {
            continue;
        }
        // Directives.
        if tokens[0].text.eq_ignore_ascii_case("$ORIGIN") {
            let arg = tokens.get(1).ok_or_else(|| err("$ORIGIN needs an argument".into()))?;
            origin = parse_name(&arg.text, &origin).map_err(&err)?;
            continue;
        }
        if tokens[0].text.eq_ignore_ascii_case("$TTL") {
            let arg = tokens.get(1).ok_or_else(|| err("$TTL needs an argument".into()))?;
            default_ttl =
                Some(parse_ttl(&arg.text).ok_or_else(|| err(format!("bad TTL {}", arg.text)))?);
            continue;
        }
        if tokens[0].text.starts_with('$') {
            return Err(err(format!("unsupported directive {}", tokens[0].text)));
        }

        let mut idx = 0;
        // Owner: present iff the line did not start with whitespace.
        let owner = if tokens[0].at_line_start {
            let name = parse_name(&tokens[0].text, &origin).map_err(&err)?;
            idx = 1;
            last_owner = Some(name.clone());
            name
        } else {
            last_owner.clone().ok_or_else(|| err("record with no previous owner".into()))?
        };

        // Optional TTL and class, in either order.
        let mut ttl: Option<u32> = None;
        let mut class = RClass::IN;
        for _ in 0..2 {
            let Some(tok) = tokens.get(idx) else { break };
            // TTLs may carry time units ("1h30m", "2d"); a bare type
            // mnemonic never parses as one.
            if ttl.is_none() && RType::parse(&tok.text).is_none() {
                if let Some(v) = parse_ttl(&tok.text) {
                    ttl = Some(v);
                    idx += 1;
                    continue;
                }
            }
            let up = tok.text.to_ascii_uppercase();
            if up == "IN" || up == "CH" {
                class = if up == "IN" { RClass::IN } else { RClass::CH };
                idx += 1;
                continue;
            }
            break;
        }

        let type_tok = tokens.get(idx).ok_or_else(|| err("missing record type".into()))?;
        let rtype = RType::parse(&type_tok.text).ok_or_else(|| err(format!("unknown type {}", type_tok.text)))?;
        idx += 1;

        let rest: Vec<&Token> = tokens[idx..].iter().collect();
        let rdata = parse_rdata(rtype, &rest, &origin).map_err(&err)?;
        let ttl = ttl.or(default_ttl).ok_or_else(|| err("no TTL and no $TTL default".into()))?;

        zone.insert(Record { name: owner, class, ttl, rdata })
            .map_err(|e| err(e.to_string()))?;
    }
    Ok(zone)
}

/// Serializes a zone to master-file text in canonical order. The output
/// starts with `$ORIGIN` and records use fully-qualified names, so
/// `parse(serialize(z)) == z`.
pub fn serialize(zone: &Zone) -> String {
    let mut out = String::new();
    out.push_str(&format!("$ORIGIN {}\n", zone.origin()));
    // SOA first by convention.
    let mut records: Vec<Record> = zone.records().collect();
    records.sort_by_key(|r| {
        (
            if r.rtype() == RType::SOA { 0u8 } else { 1 },
            r.name.clone(),
            r.rtype().to_u16(),
        )
    });
    for r in records {
        out.push_str(&r.to_string());
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// lexing

struct Token {
    text: String,
    at_line_start: bool,
    quoted: bool,
}

/// Joins parenthesized continuations and strips comments, yielding
/// `(line_number_of_first_physical_line, logical_line)` pairs.
fn logical_lines(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut buf = String::new();
    let mut depth = 0usize;
    let mut start_line = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        if depth == 0 {
            start_line = i + 1;
        }
        depth += line.matches('(').count();
        let closes = line.matches(')').count();
        depth = depth.saturating_sub(closes);
        let cleaned = line.replace(['(', ')'], " ");
        if !buf.is_empty() {
            buf.push(' ');
            // Continuation lines must not look owner-bearing; they join with
            // a space so the first token is never at_line_start.
        }
        buf.push_str(&cleaned);
        if depth == 0 {
            if !buf.trim().is_empty() {
                out.push((start_line, std::mem::take(&mut buf)));
            } else {
                buf.clear();
            }
        }
    }
    if !buf.trim().is_empty() {
        out.push((start_line, buf));
    }
    out
}

fn strip_comment(line: &str) -> String {
    let mut out = String::new();
    let mut in_quote = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_quote = !in_quote;
                out.push(c);
            }
            '\\' => {
                out.push(c);
                if let Some(&next) = chars.peek() {
                    out.push(next);
                    chars.next();
                }
            }
            ';' if !in_quote => break,
            _ => out.push(c),
        }
    }
    out
}

fn tokenize(line: &str) -> Result<Vec<Token>, String> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0;
    let line_starts_with_ws = bytes.first().map(|c| c.is_whitespace()).unwrap_or(true);
    while i < bytes.len() {
        if bytes[i].is_whitespace() {
            i += 1;
            continue;
        }
        let at_line_start = tokens.is_empty() && !line_starts_with_ws;
        if bytes[i] == '"' {
            i += 1;
            let mut text = String::new();
            loop {
                if i >= bytes.len() {
                    return Err("unterminated quoted string".into());
                }
                match bytes[i] {
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\\' if i + 1 < bytes.len() => {
                        text.push(bytes[i + 1]);
                        i += 2;
                    }
                    c => {
                        text.push(c);
                        i += 1;
                    }
                }
            }
            tokens.push(Token { text, at_line_start, quoted: true });
        } else {
            let mut text = String::new();
            while i < bytes.len() && !bytes[i].is_whitespace() {
                if bytes[i] == '\\' && i + 1 < bytes.len() {
                    text.push(bytes[i]);
                    text.push(bytes[i + 1]);
                    i += 2;
                } else {
                    text.push(bytes[i]);
                    i += 1;
                }
            }
            tokens.push(Token { text, at_line_start, quoted: false });
        }
    }
    Ok(tokens)
}

// ---------------------------------------------------------------------------
// field parsing

/// Parses a TTL with optional RFC-style time units: `86400`, `1h30m`, `2d`,
/// `1w`. Returns `None` on anything else.
pub fn parse_ttl(s: &str) -> Option<u32> {
    if s.is_empty() {
        return None;
    }
    if let Ok(v) = s.parse::<u32>() {
        return Some(v);
    }
    let mut total: u64 = 0;
    let mut acc: u64 = 0;
    let mut saw_digit = false;
    for c in s.chars() {
        match c {
            '0'..='9' => {
                acc = acc * 10 + (c as u64 - '0' as u64);
                saw_digit = true;
            }
            'w' | 'W' | 'd' | 'D' | 'h' | 'H' | 'm' | 'M' | 's' | 'S' => {
                if !saw_digit {
                    return None;
                }
                let mult = match c.to_ascii_lowercase() {
                    'w' => 604_800,
                    'd' => 86_400,
                    'h' => 3_600,
                    'm' => 60,
                    _ => 1,
                };
                total += acc * mult;
                acc = 0;
                saw_digit = false;
            }
            _ => return None,
        }
    }
    if saw_digit {
        // Trailing bare digits after a unit ("1h30") are ambiguous: reject.
        return None;
    }
    u32::try_from(total).ok()
}

fn parse_name(s: &str, origin: &Name) -> Result<Name, String> {
    if s == "@" {
        return Ok(origin.clone());
    }
    if let Some(stripped) = s.strip_suffix('.') {
        if stripped.is_empty() {
            return Ok(Name::root());
        }
        return Name::parse(s).map_err(|e| e.to_string());
    }
    // Relative: append origin.
    let rel = Name::parse(s).map_err(|e| e.to_string())?;
    rel.concat(origin).map_err(|e| e.to_string())
}

fn need<'a>(rest: &'a [&Token], i: usize, what: &str) -> Result<&'a Token, String> {
    rest.get(i).copied().ok_or_else(|| format!("missing {what}"))
}

fn parse_u32(rest: &[&Token], i: usize, what: &str) -> Result<u32, String> {
    need(rest, i, what)?.text.parse().map_err(|_| format!("bad {what}"))
}

fn parse_u16(rest: &[&Token], i: usize, what: &str) -> Result<u16, String> {
    need(rest, i, what)?.text.parse().map_err(|_| format!("bad {what}"))
}

fn parse_u8(rest: &[&Token], i: usize, what: &str) -> Result<u8, String> {
    need(rest, i, what)?.text.parse().map_err(|_| format!("bad {what}"))
}

fn parse_hex(rest: &[&Token], i: usize, what: &str) -> Result<Vec<u8>, String> {
    rootless_util::hex::decode(&need(rest, i, what)?.text).ok_or_else(|| format!("bad hex in {what}"))
}

fn parse_rdata(rtype: RType, rest: &[&Token], origin: &Name) -> Result<RData, String> {
    match rtype {
        RType::A => {
            let addr = need(rest, 0, "IPv4 address")?.text.parse().map_err(|_| "bad IPv4 address".to_string())?;
            Ok(RData::A(addr))
        }
        RType::AAAA => {
            let addr = need(rest, 0, "IPv6 address")?.text.parse().map_err(|_| "bad IPv6 address".to_string())?;
            Ok(RData::Aaaa(addr))
        }
        RType::NS => Ok(RData::Ns(parse_name(&need(rest, 0, "NS target")?.text, origin)?)),
        RType::CNAME => Ok(RData::Cname(parse_name(&need(rest, 0, "CNAME target")?.text, origin)?)),
        RType::PTR => Ok(RData::Ptr(parse_name(&need(rest, 0, "PTR target")?.text, origin)?)),
        RType::MX => {
            let pref = parse_u16(rest, 0, "MX preference")?;
            Ok(RData::Mx(pref, parse_name(&need(rest, 1, "MX exchange")?.text, origin)?))
        }
        RType::TXT => {
            if rest.is_empty() {
                return Err("TXT needs at least one string".into());
            }
            Ok(RData::Txt(rest.iter().map(|t| t.text.clone().into_bytes()).collect()))
        }
        RType::SOA => Ok(RData::Soa(Soa {
            mname: parse_name(&need(rest, 0, "SOA mname")?.text, origin)?,
            rname: parse_name(&need(rest, 1, "SOA rname")?.text, origin)?,
            serial: parse_u32(rest, 2, "SOA serial")?,
            refresh: parse_u32(rest, 3, "SOA refresh")?,
            retry: parse_u32(rest, 4, "SOA retry")?,
            expire: parse_u32(rest, 5, "SOA expire")?,
            minimum: parse_u32(rest, 6, "SOA minimum")?,
        })),
        RType::DS => Ok(RData::Ds(Ds {
            key_tag: parse_u16(rest, 0, "DS key tag")?,
            algorithm: parse_u8(rest, 1, "DS algorithm")?,
            digest_type: parse_u8(rest, 2, "DS digest type")?,
            digest: parse_hex(rest, 3, "DS digest")?,
        })),
        RType::DNSKEY => Ok(RData::Dnskey(Dnskey {
            flags: parse_u16(rest, 0, "DNSKEY flags")?,
            protocol: parse_u8(rest, 1, "DNSKEY protocol")?,
            algorithm: parse_u8(rest, 2, "DNSKEY algorithm")?,
            public_key: parse_hex(rest, 3, "DNSKEY key")?,
        })),
        RType::RRSIG => Ok(RData::Rrsig(Rrsig {
            type_covered: RType::parse(&need(rest, 0, "RRSIG type covered")?.text)
                .ok_or("bad RRSIG type covered")?,
            algorithm: parse_u8(rest, 1, "RRSIG algorithm")?,
            labels: parse_u8(rest, 2, "RRSIG labels")?,
            original_ttl: parse_u32(rest, 3, "RRSIG original TTL")?,
            expiration: parse_u32(rest, 4, "RRSIG expiration")?,
            inception: parse_u32(rest, 5, "RRSIG inception")?,
            key_tag: parse_u16(rest, 6, "RRSIG key tag")?,
            signer: parse_name(&need(rest, 7, "RRSIG signer")?.text, origin)?,
            signature: parse_hex(rest, 8, "RRSIG signature")?,
        })),
        RType::NSEC => {
            let next = parse_name(&need(rest, 0, "NSEC next name")?.text, origin)?;
            let mut types = Vec::new();
            for t in &rest[1..] {
                types.push(RType::parse(&t.text).ok_or_else(|| format!("bad NSEC type {}", t.text))?);
            }
            Ok(RData::Nsec(next, types))
        }
        RType::SRV => Ok(RData::Srv(Srv {
            priority: parse_u16(rest, 0, "SRV priority")?,
            weight: parse_u16(rest, 1, "SRV weight")?,
            port: parse_u16(rest, 2, "SRV port")?,
            target: parse_name(&need(rest, 3, "SRV target")?.text, origin)?,
        })),
        RType::CAA => {
            let flags = parse_u8(rest, 0, "CAA flags")?;
            let tag = need(rest, 1, "CAA tag")?.text.clone().into_bytes();
            let value = need(rest, 2, "CAA value")?.text.clone().into_bytes();
            Ok(RData::Caa(Caa { flags, tag, value }))
        }
        RType::ZONEMD => Ok(RData::Zonemd(Zonemd {
            serial: parse_u32(rest, 0, "ZONEMD serial")?,
            scheme: parse_u8(rest, 1, "ZONEMD scheme")?,
            hash_algorithm: parse_u8(rest, 2, "ZONEMD hash algorithm")?,
            digest: parse_hex(rest, 3, "ZONEMD digest")?,
        })),
        other => {
            // RFC 3597 generic syntax: \# <len> <hex>.
            if rest.len() >= 2 && rest[0].text == "\\#" && !rest[0].quoted {
                let len: usize = rest[1].text.parse().map_err(|_| "bad \\# length")?;
                let bytes = if len == 0 { Vec::new() } else { parse_hex(rest, 2, "generic rdata")? };
                if bytes.len() != len {
                    return Err("generic rdata length mismatch".into());
                }
                Ok(RData::Unknown(other.to_u16(), bytes))
            } else {
                Err(format!("unsupported rdata syntax for {other}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rootless_proto::rr::RType;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    const ROOT_SNIPPET: &str = "\
$ORIGIN .
$TTL 86400
.\t86400\tIN\tSOA\ta.root-servers.net. nstld.verisign-grs.com. 2019060700 1800 900 604800 86400
.\t518400\tIN\tNS\ta.root-servers.net.
.\t518400\tIN\tNS\tb.root-servers.net.
com.\t172800\tIN\tNS\ta.gtld-servers.net.
com.\t172800\tIN\tNS\tb.gtld-servers.net.
a.gtld-servers.net.\t172800\tIN\tA\t192.5.6.30
a.gtld-servers.net.\t172800\tIN\tAAAA\t2001:503:a83e::2:30
com.\t86400\tIN\tDS\t30909 250 2 0101010101010101010101010101010101010101010101010101010101010101
";

    #[test]
    fn parse_root_snippet() {
        let zone = parse(ROOT_SNIPPET, Name::root()).unwrap();
        assert_eq!(zone.record_count(), 8);
        assert_eq!(zone.serial(), 2019060700);
        assert_eq!(zone.get(&n("com"), RType::NS).unwrap().len(), 2);
        assert_eq!(zone.tlds(), vec![n("com")]);
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let zone = parse(ROOT_SNIPPET, Name::root()).unwrap();
        let text = serialize(&zone);
        let back = parse(&text, Name::root()).unwrap();
        assert_eq!(back, zone);
    }

    #[test]
    fn soa_with_parentheses() {
        let text = "\
@ 86400 IN SOA a.root-servers.net. nstld.verisign-grs.com. (
    2019060700 ; serial
    1800       ; refresh
    900        ; retry
    604800     ; expire
    86400 )    ; minimum
";
        let zone = parse(text, Name::root()).unwrap();
        assert_eq!(zone.serial(), 2019060700);
    }

    #[test]
    fn origin_directive_and_relative_names() {
        let text = "\
$ORIGIN example.com.
$TTL 300
@ IN NS ns1
ns1 IN A 10.0.0.1
www IN CNAME @
";
        let zone = parse(text, Name::root()).unwrap();
        assert!(zone.get(&n("ns1.example.com"), RType::A).is_some());
        match &zone.get(&n("www.example.com"), RType::CNAME).unwrap().rdatas()[0] {
            RData::Cname(target) => assert_eq!(target, &n("example.com")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn owner_inheritance() {
        let text = "\
$TTL 60
com. IN NS a.gtld-servers.net.
     IN NS b.gtld-servers.net.
";
        let zone = parse(text, Name::root()).unwrap();
        assert_eq!(zone.get(&n("com"), RType::NS).unwrap().len(), 2);
    }

    #[test]
    fn default_ttl_applies() {
        let text = "$TTL 12345\ncom. IN NS a.gtld-servers.net.\n";
        let zone = parse(text, Name::root()).unwrap();
        assert_eq!(zone.get(&n("com"), RType::NS).unwrap().ttl, 12345);
    }

    #[test]
    fn missing_ttl_without_default_errors() {
        let text = "com. IN NS a.gtld-servers.net.\n";
        let err = parse(text, Name::root()).unwrap_err();
        assert!(matches!(err, ZoneError::Parse { line: 1, .. }));
    }

    #[test]
    fn comments_stripped() {
        let text = "$TTL 60 ; default\ncom. IN NS a.gtld-servers.net. ; the com NS\n; full comment line\n";
        let zone = parse(text, Name::root()).unwrap();
        assert_eq!(zone.record_count(), 1);
    }

    #[test]
    fn txt_with_quotes_and_semicolons() {
        let text = "$TTL 60\nx. IN TXT \"hello; world\" \"second\"\n";
        let zone = parse(text, Name::root()).unwrap();
        match &zone.get(&n("x"), RType::TXT).unwrap().rdatas()[0] {
            RData::Txt(strings) => {
                assert_eq!(strings[0], b"hello; world".to_vec());
                assert_eq!(strings[1], b"second".to_vec());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn class_and_ttl_in_either_order() {
        let a = parse("com. 60 IN NS x.net.\n", Name::root()).unwrap();
        let b = parse("com. IN 60 NS x.net.\n", Name::root()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn generic_rfc3597_rdata() {
        let text = "$TTL 60\nx. IN TYPE4711 \\# 3 010203\n";
        let zone = parse(text, Name::root()).unwrap();
        match &zone.get(&n("x"), RType::Unknown(4711)).unwrap().rdatas()[0] {
            RData::Unknown(4711, bytes) => assert_eq!(bytes, &vec![1, 2, 3]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_reports_line_number() {
        let text = "$TTL 60\ncom. IN NS a.example.\ncom. IN BOGUSTYPE x\n";
        match parse(text, Name::root()) {
            Err(ZoneError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(parse("$TTL 60\nx. IN TXT \"oops\n", Name::root()).is_err());
    }

    #[test]
    fn ttl_units() {
        assert_eq!(parse_ttl("86400"), Some(86_400));
        assert_eq!(parse_ttl("1h"), Some(3_600));
        assert_eq!(parse_ttl("1h30m"), Some(5_400));
        assert_eq!(parse_ttl("2d"), Some(172_800));
        assert_eq!(parse_ttl("1w"), Some(604_800));
        assert_eq!(parse_ttl("1H30M"), Some(5_400));
        assert_eq!(parse_ttl(""), None);
        assert_eq!(parse_ttl("abc"), None);
        assert_eq!(parse_ttl("1h30"), None, "trailing unitless digits rejected");
    }

    #[test]
    fn ttl_units_in_records_and_directive() {
        let text = "$TTL 1h\ncom. IN NS a.x.\norg. 2d IN NS b.x.\n";
        let zone = parse(text, Name::root()).unwrap();
        assert_eq!(zone.get(&n("com"), RType::NS).unwrap().ttl, 3_600);
        assert_eq!(zone.get(&n("org"), RType::NS).unwrap().ttl, 172_800);
    }

    #[test]
    fn srv_and_caa_parse_and_roundtrip() {
        let text = "\
$TTL 300
_dns._udp.example.com. IN SRV 10 60 53 ns1.example.com.
example.com. IN CAA 128 issue \"ca.example.net\"
";
        let zone = parse(text, Name::root()).unwrap();
        match &zone.get(&n("_dns._udp.example.com"), RType::SRV).unwrap().rdatas()[0] {
            RData::Srv(srv) => {
                assert_eq!(srv.port, 53);
                assert_eq!(srv.target, n("ns1.example.com"));
            }
            other => panic!("{other:?}"),
        }
        match &zone.get(&n("example.com"), RType::CAA).unwrap().rdatas()[0] {
            RData::Caa(caa) => {
                assert_eq!(caa.flags, 128);
                assert_eq!(caa.tag, b"issue".to_vec());
                assert_eq!(caa.value, b"ca.example.net".to_vec());
            }
            other => panic!("{other:?}"),
        }
        let back = parse(&serialize(&zone), Name::root()).unwrap();
        assert_eq!(back, zone);
    }

    #[test]
    fn dnskey_and_rrsig_roundtrip() {
        let text = "\
$TTL 172800
. IN DNSKEY 257 3 250 00112233
. IN RRSIG DNSKEY 250 0 172800 1000000 0 12345 . aabbccdd
";
        let zone = parse(text, Name::root()).unwrap();
        let out = serialize(&zone);
        let back = parse(&out, Name::root()).unwrap();
        assert_eq!(back, zone);
    }
}
