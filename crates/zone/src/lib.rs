//! # rootless-zone
//!
//! Zone-layer substrate for the `rootless` workspace: the data the paper's
//! proposal distributes instead of operating root nameservers.
//!
//! * [`rrset`] / [`zone`] — the zone model: RRsets in canonical order with
//!   authoritative lookup semantics (answers, referrals with glue, NXDOMAIN).
//! * [`master`] — RFC 1035 master-file parsing and serialization.
//! * [`hints`] — the 39-entry root hints file (§2.1).
//! * [`rootzone`] — the synthetic root zone generator calibrated to the real
//!   zone's scale (1 532 TLDs, ~22K records; DESIGN.md §2 documents the
//!   substitution for the non-redistributable real file).
//! * [`diff`] — RRset-level zone diffs: the §5.3 "recent additions" feed and
//!   the IXFR-style incremental payload.
//! * [`churn`] — a day-over-day timeline with the §5.2 dynamics: adds,
//!   deletes, NeuStar-style rotators and slow nameserver migrations.
//! * [`history`] — the longitudinal models behind Fig. 1 (zone size) and
//!   Fig. 2 (root instance counts).
//! * [`extract`] — the §5.1 "extract one TLD from the compressed zone file"
//!   operation and its indexed fast path.

#![warn(missing_docs)]

pub mod churn;
pub mod diff;
pub mod extract;
pub mod hints;
pub mod history;
pub mod master;
pub mod rootzone;
pub mod rrset;
pub mod zone;

pub use diff::ZoneDiff;
pub use hints::RootHints;
pub use rootzone::RootZoneConfig;
pub use rrset::{RrKey, RrSet};
pub use zone::{Lookup, Zone, ZoneError};
