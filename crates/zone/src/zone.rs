//! The zone data model: an origin plus RRsets in canonical order, with the
//! lookup operations an authoritative server needs (exact match, delegation
//! cut, glue collection).

use std::collections::BTreeMap;

use rootless_proto::name::Name;
use rootless_proto::rr::{RData, RType, Record, Soa};

use crate::rrset::{RrKey, RrSet};

/// Result of looking a name/type up in a zone from the zone's point of view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// The RRset exists at this name.
    Answer(RrSet),
    /// The name sits at or below a zone cut: here are the NS records of the
    /// cut plus any in-zone glue addresses.
    Delegation {
        /// NS RRset at the cut.
        ns: RrSet,
        /// A/AAAA records for in-zone nameserver names.
        glue: Vec<Record>,
    },
    /// Name exists but has no RRset of the requested type.
    NoData,
    /// Name does not exist in the zone.
    NxDomain,
}

/// Borrowed variant of [`Lookup`] — the serving hot path's view. Nothing is
/// cloned or collected: `Answer`/`Delegation` borrow the zone's RRsets, and
/// glue is walked on demand via [`Zone::glue_for`]. [`Zone::lookup`] is the
/// owning wrapper over this.
#[derive(Clone, Copy, Debug)]
pub enum LookupRef<'a> {
    /// The RRset exists at this name.
    Answer(&'a RrSet),
    /// The name sits at or below a zone cut; glue comes separately from
    /// [`Zone::glue_for`] on the same NS set.
    Delegation {
        /// NS RRset at the cut.
        ns: &'a RrSet,
    },
    /// Name exists but has no RRset of the requested type.
    NoData,
    /// Name does not exist in the zone.
    NxDomain,
}

/// An authoritative zone: origin name, serial via SOA, and RRsets stored in
/// canonical order (the order DNSSEC digests and NSEC chains require).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Zone {
    origin: Name,
    records: BTreeMap<RrKey, RrSet>,
}

impl Zone {
    /// Creates an empty zone rooted at `origin`.
    pub fn new(origin: Name) -> Self {
        Zone { origin, records: BTreeMap::new() }
    }

    /// The zone origin.
    pub fn origin(&self) -> &Name {
        &self.origin
    }

    /// Inserts one record. Returns an error if the owner is outside the zone.
    pub fn insert(&mut self, record: Record) -> Result<(), ZoneError> {
        if !record.name.is_within(&self.origin) {
            return Err(ZoneError::OutOfZone(record.name.clone()));
        }
        let key = RrKey::new(record.name.clone(), record.rtype());
        self.records
            .entry(key)
            .or_insert_with(|| RrSet::new(record.name.clone(), record.rtype(), record.ttl))
            .push(record.ttl, record.rdata);
        Ok(())
    }

    /// Inserts a whole RRset, replacing any existing set with the same key.
    pub fn insert_rrset(&mut self, set: RrSet) -> Result<(), ZoneError> {
        if !set.name.is_within(&self.origin) {
            return Err(ZoneError::OutOfZone(set.name.clone()));
        }
        self.records.insert(set.key(), set);
        Ok(())
    }

    /// Removes an entire RRset; returns it if present.
    pub fn remove_rrset(&mut self, name: &Name, rtype: RType) -> Option<RrSet> {
        self.records.remove(&RrKey::new(name.clone(), rtype))
    }

    /// Removes a single RDATA from an RRset; drops the set when it empties.
    pub fn remove_rdata(&mut self, name: &Name, rtype: RType, rdata: &RData) -> bool {
        let key = RrKey::new(name.clone(), rtype);
        if let Some(set) = self.records.get_mut(&key) {
            let removed = set.remove(rdata);
            if set.is_empty() {
                self.records.remove(&key);
            }
            removed
        } else {
            false
        }
    }

    /// Exact RRset fetch.
    pub fn get(&self, name: &Name, rtype: RType) -> Option<&RrSet> {
        self.records.get(&RrKey::new(name.clone(), rtype))
    }

    /// The zone's SOA, if present.
    pub fn soa(&self) -> Option<&Soa> {
        self.get(&self.origin, RType::SOA).and_then(|set| {
            set.rdatas().first().and_then(|rd| match rd {
                RData::Soa(soa) => Some(soa),
                _ => None,
            })
        })
    }

    /// The zone serial from the SOA (0 if absent).
    pub fn serial(&self) -> u32 {
        self.soa().map(|s| s.serial).unwrap_or(0)
    }

    /// True if any RRset exists at `name`.
    pub fn name_exists(&self, name: &Name) -> bool {
        // RRset keys for `name` form a contiguous range because RrKey orders
        // by (name, type).
        self.records
            .range(RrKey::new(name.clone(), RType::Unknown(0))..=RrKey::new(name.clone(), RType::Unknown(u16::MAX)))
            .next()
            .is_some()
    }

    /// All RRsets at `name`.
    pub fn rrsets_at(&self, name: &Name) -> Vec<&RrSet> {
        self.records
            .range(RrKey::new(name.clone(), RType::Unknown(0))..=RrKey::new(name.clone(), RType::Unknown(u16::MAX)))
            .map(|(_, set)| set)
            .collect()
    }

    /// Authoritative lookup implementing the referral logic of RFC 1034
    /// §4.3.2 restricted to what the root/TLD servers in this workspace
    /// need. Owning wrapper over [`Zone::lookup_ref`]; servers on the
    /// per-query hot path use the borrowed form directly.
    pub fn lookup(&self, qname: &Name, qtype: RType) -> Lookup {
        match self.lookup_ref(qname, qtype) {
            LookupRef::Answer(set) => Lookup::Answer(set.clone()),
            LookupRef::Delegation { ns } => {
                let mut glue = Vec::new();
                self.glue_for(ns, |set| set.push_records_into(&mut glue));
                Lookup::Delegation { ns: ns.clone(), glue }
            }
            LookupRef::NoData => Lookup::NoData,
            LookupRef::NxDomain => Lookup::NxDomain,
        }
    }

    /// Borrowed authoritative lookup — same decision procedure as
    /// [`Zone::lookup`], zero allocation: answers and delegations borrow
    /// the zone's own RRsets, and delegation glue is iterated separately
    /// with [`Zone::glue_for`].
    pub fn lookup_ref(&self, qname: &Name, qtype: RType) -> LookupRef<'_> {
        if !qname.is_within(&self.origin) {
            return LookupRef::NxDomain;
        }
        // Walk down from the origin looking for a zone cut strictly above
        // qname (an NS RRset at a name that is not the origin).
        let origin_depth = self.origin.label_count();
        let qdepth = qname.label_count();
        for depth in (origin_depth + 1)..=qdepth {
            let ancestor = qname.suffix(depth);
            if let Some(ns) = self.records.get(&RrKey::new(ancestor.clone(), RType::NS)) {
                // Found a cut at `ancestor`: refer, unless the query is for
                // the cut's DS record, which the parent answers.
                if ancestor == *qname && qtype == RType::DS {
                    break;
                }
                return LookupRef::Delegation { ns };
            }
        }
        match self.records.get(&RrKey::new(qname.clone(), qtype)) {
            Some(set) => LookupRef::Answer(set),
            None => {
                if self.name_exists(qname) {
                    LookupRef::NoData
                } else {
                    LookupRef::NxDomain
                }
            }
        }
    }

    /// Visits the A/AAAA glue RRsets for the nameserver targets of an NS
    /// RRset, in the same order [`Lookup::Delegation`] collects them
    /// (per-target, A before AAAA). Callback form so the serving hot path
    /// can append straight into a pooled response vector.
    pub fn glue_for(&self, ns: &RrSet, mut f: impl FnMut(&RrSet)) {
        for rd in ns.rdatas() {
            if let RData::Ns(target) = rd {
                for t in [RType::A, RType::AAAA] {
                    if let Some(set) = self.records.get(&RrKey::new(target.clone(), t)) {
                        f(set);
                    }
                }
            }
        }
    }

    /// Collects A/AAAA glue for the nameserver targets of an NS RRset.
    fn collect_glue(&self, ns: &RrSet) -> Vec<Record> {
        let mut glue = Vec::new();
        self.glue_for(ns, |set| set.push_records_into(&mut glue));
        glue
    }

    /// Iterates RRsets in canonical order.
    pub fn rrsets(&self) -> impl Iterator<Item = &RrSet> {
        self.records.values()
    }

    /// Iterates all records in canonical order.
    pub fn records(&self) -> impl Iterator<Item = Record> + '_ {
        self.records.values().flat_map(|set| set.records())
    }

    /// Number of RRsets.
    pub fn rrset_count(&self) -> usize {
        self.records.len()
    }

    /// Number of individual records — the quantity Fig. 1 plots.
    pub fn record_count(&self) -> usize {
        self.records.values().map(|s| s.len()).sum()
    }

    /// The delegated child zone names: owners of NS RRsets other than the
    /// origin. For the root zone these are exactly the TLDs.
    pub fn delegations(&self) -> Vec<Name> {
        self.records
            .values()
            .filter(|set| set.rtype == RType::NS && set.name != self.origin)
            .map(|set| set.name.clone())
            .collect()
    }

    /// Convenience for the root zone: delegated TLDs.
    pub fn tlds(&self) -> Vec<Name> {
        self.delegations()
    }

    /// All records belonging to one delegation: the NS set plus glue for
    /// in-zone nameserver targets plus the DS set. This is what the paper's
    /// "extract all records related to a given TLD" test pulls out.
    pub fn delegation_records(&self, child: &Name) -> Vec<Record> {
        let mut out = Vec::new();
        if let Some(ns) = self.get(child, RType::NS) {
            out.extend(ns.records());
            out.extend(self.collect_glue(ns));
        }
        if let Some(ds) = self.get(child, RType::DS) {
            out.extend(ds.records());
        }
        out
    }
}

/// Errors for zone mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneError {
    /// Record owner is not within the zone origin.
    OutOfZone(Name),
    /// Master-file syntax error with line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for ZoneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZoneError::OutOfZone(name) => write!(f, "record owner {name} is outside the zone"),
            ZoneError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for ZoneError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn root_zone_fixture() -> Zone {
        let mut z = Zone::new(Name::root());
        z.insert(Record::new(
            Name::root(),
            86_400,
            RData::Soa(Soa {
                mname: n("a.root-servers.net"),
                rname: n("nstld.verisign-grs.com"),
                serial: 2019_060_700,
                refresh: 1800,
                retry: 900,
                expire: 604_800,
                minimum: 86_400,
            }),
        ))
        .unwrap();
        for host in ["a.root-servers.net", "b.root-servers.net"] {
            z.insert(Record::new(Name::root(), 518_400, RData::Ns(n(host)))).unwrap();
        }
        z.insert(Record::new(n("com"), 172_800, RData::Ns(n("a.gtld-servers.net")))).unwrap();
        z.insert(Record::new(n("com"), 172_800, RData::Ns(n("b.gtld-servers.net")))).unwrap();
        z.insert(Record::new(n("a.gtld-servers.net"), 172_800, RData::A("192.5.6.30".parse().unwrap()))).unwrap();
        z.insert(Record::new(n("a.gtld-servers.net"), 172_800, RData::Aaaa("2001:503:a83e::2:30".parse().unwrap()))).unwrap();
        z.insert(Record::new(n("org"), 172_800, RData::Ns(n("a0.org.afilias-nst.info")))).unwrap();
        z.insert(Record::new(
            n("com"),
            86_400,
            RData::Ds(rootless_proto::rr::Ds { key_tag: 1, algorithm: 250, digest_type: 2, digest: vec![1; 32] }),
        ))
        .unwrap();
        z
    }

    #[test]
    fn insert_and_get() {
        let z = root_zone_fixture();
        assert_eq!(z.get(&n("com"), RType::NS).unwrap().len(), 2);
        assert!(z.get(&n("com"), RType::TXT).is_none());
    }

    #[test]
    fn out_of_zone_rejected() {
        let mut z = Zone::new(n("org"));
        let r = Record::new(n("example.com"), 60, RData::Ns(n("ns.example.com")));
        assert!(matches!(z.insert(r), Err(ZoneError::OutOfZone(_))));
    }

    #[test]
    fn soa_and_serial() {
        let z = root_zone_fixture();
        assert_eq!(z.serial(), 2019_060_700);
        assert_eq!(z.soa().unwrap().mname, n("a.root-servers.net"));
    }

    #[test]
    fn lookup_referral_for_name_under_tld() {
        let z = root_zone_fixture();
        match z.lookup(&n("www.sigcomm.org"), RType::A) {
            Lookup::Delegation { ns, glue } => {
                assert_eq!(ns.name, n("org"));
                assert!(glue.is_empty(), "org NS has no in-zone glue in fixture");
            }
            other => panic!("expected delegation, got {other:?}"),
        }
    }

    #[test]
    fn lookup_referral_includes_glue() {
        let z = root_zone_fixture();
        match z.lookup(&n("www.example.com"), RType::A) {
            Lookup::Delegation { ns, glue } => {
                assert_eq!(ns.name, n("com"));
                // a.gtld-servers.net has A + AAAA glue in the fixture.
                assert_eq!(glue.len(), 2);
            }
            other => panic!("expected delegation, got {other:?}"),
        }
    }

    #[test]
    fn lookup_at_cut_is_referral() {
        let z = root_zone_fixture();
        assert!(matches!(z.lookup(&n("com"), RType::NS), Lookup::Delegation { .. }));
        assert!(matches!(z.lookup(&n("com"), RType::A), Lookup::Delegation { .. }));
    }

    #[test]
    fn ds_at_cut_answered_by_parent() {
        let z = root_zone_fixture();
        match z.lookup(&n("com"), RType::DS) {
            Lookup::Answer(set) => assert_eq!(set.rtype, RType::DS),
            other => panic!("expected DS answer, got {other:?}"),
        }
    }

    #[test]
    fn nxdomain_for_bogus_tld() {
        let z = root_zone_fixture();
        assert_eq!(z.lookup(&n("local"), RType::A), Lookup::NxDomain);
        assert_eq!(z.lookup(&n("foo.internal-network"), RType::A), Lookup::NxDomain);
    }

    #[test]
    fn nodata_for_existing_name_wrong_type() {
        let z = root_zone_fixture();
        assert_eq!(z.lookup(&Name::root(), RType::TXT), Lookup::NoData);
    }

    #[test]
    fn apex_ns_answered_not_referred() {
        let z = root_zone_fixture();
        match z.lookup(&Name::root(), RType::NS) {
            Lookup::Answer(set) => assert_eq!(set.len(), 2),
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn delegations_lists_tlds_only() {
        let z = root_zone_fixture();
        let mut tlds = z.tlds();
        tlds.sort();
        assert_eq!(tlds, vec![n("com"), n("org")]);
    }

    #[test]
    fn delegation_records_bundle() {
        let z = root_zone_fixture();
        let recs = z.delegation_records(&n("com"));
        // 2 NS + 2 glue + 1 DS.
        assert_eq!(recs.len(), 5);
        let recs_org = z.delegation_records(&n("org"));
        assert_eq!(recs_org.len(), 1);
    }

    #[test]
    fn counts() {
        let z = root_zone_fixture();
        assert_eq!(z.record_count(), 9);
        assert!(z.rrset_count() < z.record_count());
    }

    #[test]
    fn remove_rdata_drops_empty_set() {
        let mut z = root_zone_fixture();
        let rd = RData::Ns(n("a0.org.afilias-nst.info"));
        assert!(z.remove_rdata(&n("org"), RType::NS, &rd));
        assert!(z.get(&n("org"), RType::NS).is_none());
        assert_eq!(z.lookup(&n("x.org"), RType::A), Lookup::NxDomain);
    }

    #[test]
    fn records_iterate_in_canonical_order() {
        let z = root_zone_fixture();
        let names: Vec<Name> = z.rrsets().map(|s| s.name.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        // Root apex sorts first.
        assert!(names[0].is_root());
    }

    #[test]
    fn non_root_origin_zone() {
        let mut z = Zone::new(n("com"));
        z.insert(Record::new(n("example.com"), 172_800, RData::Ns(n("ns1.example.com")))).unwrap();
        z.insert(Record::new(n("ns1.example.com"), 172_800, RData::A("10.0.0.1".parse().unwrap()))).unwrap();
        match z.lookup(&n("www.example.com"), RType::A) {
            Lookup::Delegation { ns, glue } => {
                assert_eq!(ns.name, n("example.com"));
                assert_eq!(glue.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(z.lookup(&n("nonexistent.com"), RType::A), Lookup::NxDomain);
    }
}
