//! Longitudinal models behind the paper's two figures.
//!
//! * **Fig. 1** — records in the root zone on the 15th of each month,
//!   2009-04 → 2019-12: flat around 6K records until the new-gTLD program
//!   (317 TLDs on 2013-06-15), five-fold growth to 1 534 TLDs by 2017-06-15,
//!   then a plateau near 22K records.
//! * **Fig. 2** — root nameserver instances on the 15th of each month,
//!   2015-03 → 2019: steady growth from ~420 to 985 (2019-05-15) with three
//!   named jump events (e-root +45 in early 2016, f-root +81 in spring 2017,
//!   e-root +85 and f-root +43 in late 2017).
//!
//! The real datasets (the daily root zone archive, root-servers.org) are not
//! redistributable; these models are anchored at every datapoint the paper
//! states and interpolate between them (DESIGN.md §2).

use rootless_util::time::{monthly_series, Date};

use crate::churn::{ChurnConfig, Timeline};
use crate::rootzone::{self, RootZoneConfig};

// ---------------------------------------------------------------------------
// Fig. 1: root zone size

/// Anchor points `(date, tld_count)` stated by or derived from the paper.
const TLD_ANCHORS: [(Date, usize); 6] = [
    (Date { year: 2009, month: 4, day: 15 }, 280),
    (Date { year: 2013, month: 6, day: 15 }, 317),
    (Date { year: 2014, month: 1, day: 15 }, 380),
    (Date { year: 2017, month: 6, day: 15 }, 1_534),
    (Date { year: 2019, month: 4, day: 1 }, 1_532),
    (Date { year: 2020, month: 1, day: 15 }, 1_528),
];

/// Number of delegated TLDs on `date` (piecewise-linear through the anchors,
/// clamped at the ends).
pub fn tld_count_on(date: Date) -> usize {
    let d = date.to_epoch_days();
    let first = TLD_ANCHORS[0];
    if d <= first.0.to_epoch_days() {
        return first.1;
    }
    for w in TLD_ANCHORS.windows(2) {
        let (a_date, a_val) = w[0];
        let (b_date, b_val) = w[1];
        let (a, b) = (a_date.to_epoch_days(), b_date.to_epoch_days());
        if d <= b {
            let frac = (d - a) as f64 / (b - a) as f64;
            return (a_val as f64 + frac * (b_val as f64 - a_val as f64)).round() as usize;
        }
    }
    TLD_ANCHORS[TLD_ANCHORS.len() - 1].1
}

/// Fast estimate of root-zone record count for a TLD count, fitted once per
/// process by building two synthetic zones and interpolating linearly. (The
/// record/TLD ratio is constant by construction of the generator.)
pub fn estimated_record_count(tld_count: usize) -> usize {
    use std::sync::OnceLock;
    static FIT: OnceLock<(f64, f64)> = OnceLock::new();
    let (base, per_tld) = *FIT.get_or_init(|| {
        let small = rootzone::build(&RootZoneConfig::small(200)).record_count() as f64;
        let large = rootzone::build(&RootZoneConfig::small(1_000)).record_count() as f64;
        let per_tld = (large - small) / 800.0;
        (small - 200.0 * per_tld, per_tld)
    });
    (base + per_tld * tld_count as f64).round() as usize
}

/// The Fig. 1 series: `(date, rr_count)` on the 15th of each month. When
/// `exact` is set, every point builds a full synthetic zone and counts its
/// records; otherwise the fitted estimate is used.
pub fn fig1_series(start: Date, end: Date, exact: bool) -> Vec<(Date, usize)> {
    monthly_series(start, end, 15)
        .into_iter()
        .map(|date| {
            let tlds = tld_count_on(date);
            let rrs = if exact {
                rootzone::build(&RootZoneConfig::small(tlds)).record_count()
            } else {
                estimated_record_count(tlds)
            };
            (date, rrs)
        })
        .collect()
}

/// A daily-churn [`Timeline`] anchored at `start` in the Fig. 1 history: the
/// day-0 zone has [`tld_count_on`]`(start)` TLDs and a YYYYMMDD00-style
/// serial, and churn events are drawn from the default rates reseeded with
/// `seed`. This is how the incremental-verification gates replay windows of
/// the 2009→2019 history end to end (any era, same one call).
pub fn churn_timeline(start: Date, horizon_days: u64, seed: u64) -> Timeline {
    let base = RootZoneConfig {
        serial: (start.year as u32) * 1_000_000 + (start.month as u32) * 10_000 + (start.day as u32) * 100,
        ..RootZoneConfig::small(tld_count_on(start))
    };
    let churn = ChurnConfig { seed: seed ^ 0xC4A2, ..ChurnConfig::default() };
    Timeline::generate(base, churn, start, horizon_days)
}

// ---------------------------------------------------------------------------
// Fig. 2: root server instances

/// A discrete instance-count jump: (date it lands, root letter, added).
const JUMPS: [(Date, char, i64); 4] = [
    (Date { year: 2016, month: 2, day: 15 }, 'e', 45),
    (Date { year: 2017, month: 5, day: 15 }, 'f', 81),
    (Date { year: 2017, month: 12, day: 15 }, 'e', 85),
    (Date { year: 2017, month: 12, day: 15 }, 'f', 43),
];

/// Reference start of the Fig. 2 series.
pub const FIG2_START: Date = Date { year: 2015, month: 3, day: 15 };
/// The date the paper reports 985 total instances.
pub const FIG2_985_DATE: Date = Date { year: 2019, month: 5, day: 15 };

/// Per-root `(letter, base_2015_03, target_2019_05)` counts; the "at most
/// six instances for b,g,h,m-root ... over 100 for d,e,f,j,l-root" spread of
/// §2.1. Targets include jump contributions.
const ROOT_DEPLOYMENT: [(char, i64, i64); 13] = [
    ('a', 8, 16),
    ('b', 5, 6),
    ('c', 8, 15),
    ('d', 80, 150),
    ('e', 30, 170),
    ('f', 60, 210),
    ('g', 6, 6),
    ('h', 5, 6),
    ('i', 30, 50),
    ('j', 90, 160),
    ('k', 40, 60),
    ('l', 55, 130),
    ('m', 3, 6),
];

/// Instance count of one named root on `date`.
pub fn instances_of(letter: char, date: Date) -> usize {
    let (_, base, target) = ROOT_DEPLOYMENT
        .iter()
        .copied()
        .find(|(l, _, _)| *l == letter)
        .unwrap_or_else(|| panic!("unknown root letter {letter}"));
    let jump_total: i64 = JUMPS.iter().filter(|(_, l, _)| *l == letter).map(|(_, _, n)| n).sum();
    let jumps_landed: i64 = JUMPS
        .iter()
        .filter(|(jd, l, _)| *l == letter && date >= *jd)
        .map(|(_, _, n)| n)
        .sum();

    let span = FIG2_START.days_until(FIG2_985_DATE) as f64;
    let elapsed = (FIG2_START.days_until(date) as f64).clamp(0.0, f64::MAX);
    let linear_total = (target - base - jump_total) as f64;
    // Past the calibration window the same monthly trend continues.
    let linear = base as f64 + linear_total * (elapsed / span);
    (linear.round() as i64 + jumps_landed).max(1) as usize
}

/// Total instances across all 13 roots on `date`.
pub fn total_instances(date: Date) -> usize {
    ROOT_DEPLOYMENT.iter().map(|(l, _, _)| instances_of(*l, date)).sum()
}

/// The Fig. 2 series: `(date, total_instances)` on the 15th of each month.
pub fn fig2_series(start: Date, end: Date) -> Vec<(Date, usize)> {
    monthly_series(start, end, 15)
        .into_iter()
        .map(|d| (d, total_instances(d)))
        .collect()
}

/// Per-root breakdown used by the netsim deployment builder.
pub fn deployment_on(date: Date) -> Vec<(char, usize)> {
    ROOT_DEPLOYMENT.iter().map(|(l, _, _)| (*l, instances_of(*l, date))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tld_anchors_hit() {
        assert_eq!(tld_count_on(Date::new(2013, 6, 15)), 317);
        assert_eq!(tld_count_on(Date::new(2017, 6, 15)), 1_534);
        assert_eq!(tld_count_on(Date::new(2019, 4, 1)), 1_532);
    }

    #[test]
    fn tld_count_clamps_at_ends() {
        assert_eq!(tld_count_on(Date::new(2005, 1, 1)), 280);
        assert_eq!(tld_count_on(Date::new(2024, 1, 1)), 1_528);
    }

    #[test]
    fn tld_growth_is_fivefold_2014_to_2017() {
        // §2.1: "increased over five-fold between early 2014 and early 2017".
        let early_2014 = tld_count_on(Date::new(2014, 1, 15));
        let mid_2017 = tld_count_on(Date::new(2017, 6, 15));
        assert!(mid_2017 as f64 / early_2014 as f64 > 4.0);
    }

    #[test]
    fn estimate_tracks_exact_builds() {
        for tlds in [300usize, 700, 1_532] {
            let exact = rootzone::build(&RootZoneConfig::small(tlds)).record_count();
            let est = estimated_record_count(tlds);
            let err = (exact as f64 - est as f64).abs() / exact as f64;
            assert!(err < 0.05, "estimate off by {:.1}% at {tlds} TLDs", err * 100.0);
        }
    }

    #[test]
    fn churn_timeline_anchors_to_fig1() {
        let start = Date::new(2009, 5, 1);
        let t = churn_timeline(start, 5, 7);
        assert_eq!(t.base.tld_count, tld_count_on(start));
        assert_eq!(t.snapshot(0).serial(), 2_009_050_100);
        // Day serials advance one per day; different seeds, different events.
        assert_eq!(t.snapshot(3).serial(), 2_009_050_103);
        let u = churn_timeline(start, 5, 8);
        assert_eq!(u.snapshot(0).serial(), t.snapshot(0).serial());
    }

    #[test]
    fn fig1_plateau_near_22k() {
        let rrs = estimated_record_count(tld_count_on(Date::new(2019, 4, 1)));
        assert!((17_000..27_000).contains(&rrs), "plateau {rrs}");
    }

    #[test]
    fn fig1_series_shape() {
        let series = fig1_series(Date::new(2009, 4, 28), Date::new(2019, 12, 31), false);
        assert_eq!(series.first().unwrap().0, Date::new(2009, 5, 15));
        // Monotone-ish growth: start < 0.35 * end (the 5x claim at record level
        // is softened by the fixed apex overhead).
        let first = series.first().unwrap().1 as f64;
        let last = series.last().unwrap().1 as f64;
        assert!(first < last * 0.35, "first {first} last {last}");
    }

    #[test]
    fn fig2_total_matches_paper_on_2019_05_15() {
        // §2.1: "On May 15, 2019, root-servers.org reported 985 instances".
        assert_eq!(total_instances(Date::new(2019, 5, 15)), 985);
    }

    #[test]
    fn fig2_more_than_doubles_over_four_years() {
        // §4: "has more than doubled over the last four years".
        let start = total_instances(Date::new(2015, 5, 15));
        let end = total_instances(Date::new(2019, 5, 15));
        assert!(end as f64 / start as f64 > 2.0, "{start} -> {end}");
    }

    #[test]
    fn fig2_jumps_visible() {
        // e-root +45 between 2016-01-15 and 2016-02-15.
        let before = instances_of('e', Date::new(2016, 1, 15));
        let after = instances_of('e', Date::new(2016, 2, 15));
        assert!((after - before) as i64 >= 45, "e-root jump: {before} -> {after}");
        // f-root +81 between 2017-04-15 and 2017-05-15.
        let before = instances_of('f', Date::new(2017, 4, 15));
        let after = instances_of('f', Date::new(2017, 5, 15));
        assert!((after - before) as i64 >= 81, "f-root jump: {before} -> {after}");
        // e+f combined +128 between 2017-11-15 and 2017-12-15.
        let before = total_instances(Date::new(2017, 11, 15));
        let after = total_instances(Date::new(2017, 12, 15));
        assert!((after - before) as i64 >= 128, "late-2017 jump: {before} -> {after}");
    }

    #[test]
    fn small_roots_stay_small() {
        // §2.1: "at most six instances for b,g,h,m-root".
        for l in ['b', 'g', 'h', 'm'] {
            for date in [Date::new(2015, 3, 15), Date::new(2017, 6, 15), Date::new(2019, 5, 15)] {
                assert!(instances_of(l, date) <= 6, "{l}-root too big on {date}");
            }
        }
    }

    #[test]
    fn big_roots_exceed_100() {
        // §2.1: "over 100 instances for d,e,f,j,l-root".
        for l in ['d', 'e', 'f', 'j', 'l'] {
            assert!(instances_of(l, Date::new(2019, 5, 15)) > 100, "{l}-root too small");
        }
    }

    #[test]
    fn deployment_sums_to_total() {
        let date = Date::new(2018, 6, 15);
        let sum: usize = deployment_on(date).iter().map(|(_, n)| n).sum();
        assert_eq!(sum, total_instances(date));
    }

    #[test]
    fn fig2_series_is_mostly_increasing() {
        let series = fig2_series(FIG2_START, Date::new(2019, 7, 31));
        let increases = series.windows(2).filter(|w| w[1].1 >= w[0].1).count();
        assert!(increases as f64 > series.len() as f64 * 0.9);
    }
}
